//! Storage-fault soak: every backend × a grid of bad-disk scripts
//! against the durable txkv service, asserting the degradation contract
//! end to end — through a power cut and recovery.
//!
//! Each cell boots a 4-shard Sync-mode pipeline, seeds transfer
//! accounts, arms one [`FaultPlan`] from the plan grid and drives a
//! mixed put/get/transfer load on real client threads:
//!
//! * **weather** — probabilistic fsync failures, short writes and I/O
//!   stalls on every shard's WAL segments: the rotate-and-rewrite retry
//!   path under sustained load.
//! * **dead-shard** — permanent fsync failure on shard 1, healed
//!   mid-run: the shard must degrade to `ReadOnly`/`Failed`, shed its
//!   updates with the typed `Unavailable` while *still serving reads*,
//!   leave every other shard at full ack rate, and rejoin via the
//!   background probe once the medium heals.
//! * **ckpt-enospc** — the disk is full for shard 0's checkpoint files
//!   only: checkpoints fail and are counted, but the previous
//!   checkpoint + uncut log still cover the state, so *nothing* sheds
//!   and every shard stays `Healthy`.
//! * **corrupt** — silent post-write bit corruption on segment files
//!   with the scrubber on a tight cadence; after the medium heals the
//!   cell forces a re-checkpoint of every shard so the corrupt log
//!   region is superseded before the crash.
//!
//! Every cell then pulls the plug (`halt_all`), recovers from disk into
//! fresh backends, and asserts the hard invariants:
//!
//! * **zero acked-write loss** — every Sync-acked put is recovered;
//! * **conservation** — cross-shard transfers fully applied or fully
//!   compensated, even those refused or in flight at degradation;
//! * **answered-or-shed** — every request got a typed answer (reads are
//!   *never* refused by a degraded shard);
//! * **no early sync ack** — `wal_sync_acks_early == 0` under faults.
//!
//! Results land in `STORAGE_SOAK.json` (schema `storage_soak` v1, one
//! row per cell with serve/shed/ack counts, health transitions and the
//! survival verdict); a violated invariant dumps the failing cell to
//! `STORAGE_FAULT_FAILURE.json` and exits non-zero. A hang is caught by
//! a monitor thread, not a wedged CI job.
//!
//! Usage: `cargo run --release --bin storage_soak [-- --smoke]`

use bench::{schema, Backend};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tm_api::TmBackend;
use txkv::durability::storage as faults;
use txkv::{
    recover, recover_and_open, DurabilityConfig, DurabilityMode, FaultPlan, FaultTarget, KvClient,
    KvError, KvOp, KvReply, Pipeline, PipelineConfig, ShardMap, WalSet,
};

const SHARDS: usize = 4;
const PER_SHARD: u64 = 32;
const KEYS: u64 = SHARDS as u64 * PER_SHARD;
/// Even keys are transfer accounts (sum conserved); odd keys carry
/// per-client monotone put counters.
const INITIAL: u64 = 1_000;
const EXPECTED_TOTAL: u64 = (KEYS / 2) * INITIAL;
const WORDS: u64 = 1 << 16;
/// The shard the dead-shard script kills.
const BAD_SHARD: usize = 1;

// ----------------------------------------------------------- plan grid

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plan {
    Weather,
    DeadShard,
    CkptNoSpace,
    Corrupt,
}

impl Plan {
    const ALL: [Plan; 4] = [Plan::Weather, Plan::DeadShard, Plan::CkptNoSpace, Plan::Corrupt];

    fn name(self) -> &'static str {
        match self {
            Plan::Weather => "weather",
            Plan::DeadShard => "dead-shard",
            Plan::CkptNoSpace => "ckpt-enospc",
            Plan::Corrupt => "corrupt",
        }
    }

    fn fault_plan(self, tag: &str, seed: u64) -> FaultPlan {
        let p = match self {
            Plan::Weather => FaultPlan {
                target: FaultTarget::Segment,
                sync_fail_p: 0.05,
                short_write_p: 0.01,
                stall_p: 0.01,
                stall_max_us: 100,
                ..FaultPlan::default()
            },
            Plan::DeadShard => FaultPlan::fsync_permanent(BAD_SHARD, 0),
            Plan::CkptNoSpace => FaultPlan::enospc(0, FaultTarget::Checkpoint, 0),
            Plan::Corrupt => {
                FaultPlan { target: FaultTarget::Segment, corrupt_p: 0.02, ..FaultPlan::default() }
            }
        };
        p.tagged(tag).seeded(seed)
    }
}

// ------------------------------------------------------------ the cell

#[derive(Clone)]
struct Cfg {
    clients: u64,
    ops_per_client: u64,
}

struct CellOut {
    report: txkv::ServiceReport,
    injected: faults::FaultReport,
    acked_puts: u64,
    sheds: u64,
    /// Typed refusals observed on shards the plan never faulted.
    healthy_refusals: u64,
    recovered_keys: u64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(tag);
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn shard_of(k: u64) -> usize {
    (k / PER_SHARD) as usize
}

/// Whether the armed plan (`None` = medium already healed) can
/// legitimately refuse updates touching `shards`.
fn may_refuse(plan: Option<Plan>, shards: &[usize]) -> bool {
    match plan {
        // Probabilistic faults hit every shard: any update may shed
        // while its shard rides out a retry storm.
        Some(Plan::Weather) => true,
        Some(Plan::DeadShard) => shards.contains(&BAD_SHARD),
        // Checkpoint failure and latent corruption are absorbed without
        // degrading service — and a healed disk refuses nothing.
        Some(Plan::CkptNoSpace) | Some(Plan::Corrupt) | None => false,
    }
}

/// Call with bounded retry on `Overloaded` (admission backpressure is
/// not the contract under test here).
fn call(client: &KvClient, op: KvOp) -> Result<KvReply, KvError> {
    loop {
        match client.call(op.clone()) {
            Err(KvError::Overloaded { .. }) => std::thread::yield_now(),
            other => return other,
        }
    }
}

#[derive(Default)]
struct Tally {
    acked: HashMap<u64, u64>,
    acked_puts: u64,
    sheds: u64,
    healthy_refusals: u64,
}

/// One client's mixed load: monotone puts on its own odd keys (50 %),
/// reads (25 %, must never be refused), cross-shard transfers (25 %).
/// `ctr_base` keeps a client's put counters monotone *across* phases:
/// the recovery check compares recovered values against the per-key
/// acked maximum, so a later phase must never write a smaller value.
fn drive_client(
    client: &KvClient,
    plan: Option<Plan>,
    cfg: &Cfg,
    t: u64,
    ops: u64,
    ctr_base: u64,
) -> Tally {
    let mut rng = 0x50AB_0000u64 ^ (t << 32) ^ ops;
    let my_keys: Vec<u64> =
        (0..KEYS).filter(|k| k % 2 == 1 && (k / 2) % cfg.clients == t).collect();
    let mut tally = Tally::default();
    let mut ctr = ctr_base;
    for _ in 0..ops {
        let r = splitmix(&mut rng);
        match r % 4 {
            0 | 1 => {
                ctr += 1;
                let k = my_keys[((r >> 8) as usize) % my_keys.len()];
                match call(client, KvOp::Put { key: k, val: ctr }) {
                    Ok(KvReply::Done { .. }) => {
                        tally.acked.insert(k, ctr);
                        tally.acked_puts += 1;
                    }
                    Ok(KvReply::Unavailable) | Err(KvError::Unavailable { .. }) => {
                        tally.sheds += 1;
                        if !may_refuse(plan, &[shard_of(k)]) {
                            tally.healthy_refusals += 1;
                        }
                    }
                    other => panic!("put answered {other:?}"),
                }
            }
            2 => {
                // Reads serve even on a degraded shard — steer a quarter
                // of them at the faulted shard on purpose.
                let k = if r & 4 == 0 {
                    BAD_SHARD as u64 * PER_SHARD + (r >> 8) % PER_SHARD
                } else {
                    (r >> 8) % KEYS
                };
                match call(client, KvOp::Get { key: k }) {
                    Ok(KvReply::Value(_)) => {}
                    other => panic!("read refused on shard {}: {other:?}", shard_of(k)),
                }
            }
            _ => {
                let sa = ((r >> 8) as usize) % SHARDS;
                let sb = (sa + 1 + ((r >> 16) as usize) % (SHARDS - 1)) % SHARDS;
                let ka = sa as u64 * PER_SHARD + 2 * ((r >> 24) % (PER_SHARD / 2));
                let kb = sb as u64 * PER_SHARD + 2 * ((r >> 32) % (PER_SHARD / 2));
                let amount = 1 + (r % 9) as i64;
                let op = KvOp::MultiAdd { deltas: vec![(ka, -amount), (kb, amount)] };
                match call(client, op) {
                    Ok(KvReply::Done { .. }) => {}
                    Ok(KvReply::Unavailable) | Err(KvError::Unavailable { .. }) => {
                        tally.sheds += 1;
                        if !may_refuse(plan, &[sa, sb]) {
                            tally.healthy_refusals += 1;
                        }
                    }
                    other => panic!("transfer answered {other:?}"),
                }
            }
        }
    }
    tally
}

fn drive_phase(
    pipeline: &Pipeline<impl TmBackend>,
    plan: Option<Plan>,
    cfg: &Cfg,
    ops: u64,
    ctr_base: u64,
    total: &mut Tally,
) {
    let tallies: Vec<Tally> = std::thread::scope(|sc| {
        (0..cfg.clients)
            .map(|t| {
                let client = pipeline.client();
                sc.spawn(move || drive_client(&client, plan, cfg, t, ops, ctr_base))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    for t in tallies {
        for (k, v) in t.acked {
            let e = total.acked.entry(k).or_insert(0);
            *e = (*e).max(v);
        }
        total.acked_puts += t.acked_puts;
        total.sheds += t.sheds;
        total.healthy_refusals += t.healthy_refusals;
    }
}

fn wait_writable(wal: &WalSet, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while (0..SHARDS).any(|s| !wal.health(s).writable()) {
        assert!(
            Instant::now() < deadline,
            "{what}: shards never rejoined (health {:?})",
            wal.health_names()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Force a fresh checkpoint on every shard and wait for the executors
/// to take them (supersedes any corrupted log region before the crash).
fn force_checkpoints(wal: &WalSet) {
    let before = wal.stats().checkpoints;
    for s in 0..SHARDS {
        wal.request_checkpoint(s);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while wal.stats().checkpoints < before + SHARDS as u64 {
        assert!(
            Instant::now() < deadline,
            "forced re-checkpoint never completed ({} of {} shards)",
            wal.stats().checkpoints - before,
            SHARDS
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn run_cell<B: TmBackend>(
    mut mk: impl FnMut(usize) -> B,
    plan: Plan,
    cfg: &Cfg,
    tag: &str,
    seed: u64,
) -> CellOut {
    let dir = tmpdir(tag);
    let dcfg = DurabilityConfig {
        group_commit_max: 8,
        checkpoint_every: 32,
        flush_retries: if plan == Plan::DeadShard { 1 } else { 3 },
        retry_base_us: 10,
        maintenance_interval_ms: 5,
        scrub_interval_ms: if plan == Plan::Corrupt { 25 } else { 0 },
        ..DurabilityConfig::new(DurabilityMode::Sync, &dir)
    };
    let map = ShardMap::range(SHARDS, PER_SHARD);
    let (domains, wal, _) =
        recover_and_open(&dcfg, &map, &mut mk, 0, WORDS).expect("open durable domains");
    let pcfg = PipelineConfig {
        executors: 4,
        multi_key_max: 4,
        drain_grace: Duration::from_millis(500),
        ..PipelineConfig::quick()
    };
    let pipeline = Pipeline::start_durable(domains, map, pcfg, Arc::clone(&wal));
    let client = pipeline.client();

    // Seed the transfer accounts before the weather turns: every seed is
    // acked, so the conservation baseline is durable.
    for k in (0..KEYS).step_by(2) {
        let reply = call(&client, KvOp::Put { key: k, val: INITIAL });
        assert!(matches!(reply, Ok(KvReply::Done { .. })), "seed put answered {reply:?}");
    }

    let guard = faults::install(plan.fault_plan(tag, seed));
    let mut tally = Tally::default();

    // Phase 1: load under active faults.
    drive_phase(&pipeline, Some(plan), cfg, cfg.ops_per_client, 0, &mut tally);
    if plan == Plan::DeadShard {
        assert!(
            !wal.health(BAD_SHARD).writable(),
            "permanent fsync failure never degraded shard {BAD_SHARD} (health {:?})",
            wal.health_names()
        );
    }

    // Heal the medium; the background probes must rejoin every shard,
    // after which a short second phase runs at full ack rate (any
    // refusal in it is a bug — see `may_refuse`).
    guard.clear();
    wait_writable(&wal, plan.name());
    drive_phase(&pipeline, None, cfg, cfg.ops_per_client / 4, cfg.ops_per_client + 1, &mut tally);
    if plan == Plan::Corrupt {
        force_checkpoints(&wal);
    }

    // Pull the plug and recover: every acked write must be on disk.
    wal.halt_all();
    let report = pipeline.shutdown();
    let injected = guard.report();
    drop(guard);

    let (rdomains, _report) = recover(&dir, &map, &mut mk, 0, WORDS).expect("recovery failed");
    let read = |k: u64| {
        let s = shard_of(k);
        rdomains[s].1.load_raw(rdomains[s].0.memory(), k)
    };
    let total: u64 = (0..KEYS).step_by(2).map(|k| read(k).unwrap_or(0)).sum();
    assert_eq!(total, EXPECTED_TOTAL, "cross-shard conservation broken across recovery");
    let mut recovered_keys = 0u64;
    for (&k, &v) in &tally.acked {
        let got = read(k).unwrap_or(0);
        assert!(got >= v, "acked write lost: key {k} acked {v}, recovered {got}");
        recovered_keys += 1;
    }
    let _ = std::fs::remove_dir_all(&dir);
    CellOut {
        report,
        injected,
        acked_puts: tally.acked_puts,
        sheds: tally.sheds,
        healthy_refusals: tally.healthy_refusals,
        recovered_keys,
    }
}

// ------------------------------------------------- monitor + reporting

fn dispatch(backend: Backend, plan: Plan, cfg: &Cfg, tag: &str, seed: u64) -> CellOut {
    let words = WORDS as usize;
    match backend {
        Backend::Htm => run_cell(|_s| htm_sgl::HtmSgl::with_defaults(words), plan, cfg, tag, seed),
        Backend::SiHtm => run_cell(|_s| si_htm::SiHtm::with_defaults(words), plan, cfg, tag, seed),
        Backend::P8tm => run_cell(|_s| p8tm::P8tm::with_defaults(words), plan, cfg, tag, seed),
        Backend::Silo => run_cell(|_s| silo::Silo::with_defaults(words), plan, cfg, tag, seed),
    }
}

/// Post-run checks of the degradation counters the plan must have moved
/// (the hard invariants are asserted inside the cell).
fn check(plan: Plan, o: &CellOut) -> Result<(), String> {
    let w = &o.report.wal;
    if w.sync_acks_early != 0 {
        return Err(format!("{} sync ack(s) outran their fsync", w.sync_acks_early));
    }
    if o.healthy_refusals != 0 {
        return Err(format!(
            "{} update(s) refused on shards the plan never faulted",
            o.healthy_refusals
        ));
    }
    if o.report.shard_health.iter().any(|&h| h != "healthy") {
        return Err(format!("shards did not rejoin: final health {:?}", o.report.shard_health));
    }
    match plan {
        Plan::Weather => {
            if o.injected.sync_fails > 0 && w.wal_retries + w.degraded_sheds + w.wal_rejoins == 0 {
                return Err(format!(
                    "{} injected fsync failures moved no degradation counter",
                    o.injected.sync_fails
                ));
            }
        }
        Plan::DeadShard => {
            if w.degraded_sheds == 0 {
                return Err("dead shard shed nothing as Unavailable".into());
            }
            if w.wal_rejoins == 0 {
                return Err("healed shard never rejoined via a probe".into());
            }
        }
        Plan::CkptNoSpace => {
            if w.checkpoint_failures == 0 {
                return Err("full disk never failed a checkpoint".into());
            }
            if w.degraded_sheds != 0 {
                return Err(format!(
                    "checkpoint ENOSPC must not shed, but {} updates were refused",
                    w.degraded_sheds
                ));
            }
        }
        Plan::Corrupt => {
            if w.scrub_passes == 0 {
                return Err("scrubber never ran".into());
            }
        }
    }
    Ok(())
}

fn row_json(backend: Backend, plan: Plan, o: &CellOut) -> String {
    let w = &o.report.wal;
    format!(
        "{{\"backend\": \"{}\", \"plan\": \"{}\", \"replies\": {}, \"acked_puts\": {}, \
         \"sheds\": {}, \"healthy_refusals\": {}, \"recovered_keys\": {}, \
         \"final_health\": {:?}, \"wal_appends\": {}, \"wal_retries\": {}, \
         \"degraded_sheds\": {}, \"wal_rejoins\": {}, \"ckpt_failures\": {}, \
         \"scrub_passes\": {}, \"scrub_corruptions\": {}, \"wal_sync_acks_early\": {}, \
         \"injected_sync_fails\": {}, \"injected_short_writes\": {}, \
         \"injected_corruptions\": {}, \"injected_stalls\": {}, \"verdict\": \"pass\"}}",
        backend.name(),
        plan.name(),
        o.report.replies,
        o.acked_puts,
        o.sheds,
        o.healthy_refusals,
        o.recovered_keys,
        o.report.shard_health,
        w.wal_appends,
        w.wal_retries,
        w.degraded_sheds,
        w.wal_rejoins,
        w.checkpoint_failures,
        w.scrub_passes,
        w.scrub_corruptions,
        w.sync_acks_early,
        o.injected.sync_fails,
        o.injected.short_writes,
        o.injected.corruptions,
        o.injected.stalls,
    )
}

fn fail(backend: Backend, plan: Plan, detail: &str, o: Option<&CellOut>) -> ! {
    let mut body = format!(
        "{{\"backend\": \"{}\", \"plan\": \"{}\", \"failure\": {:?}",
        backend.name(),
        plan.name(),
        detail
    );
    if let Some(o) = o {
        let w = &o.report.wal;
        let _ = write!(
            body,
            ", \"final_health\": {:?}, \"acked_puts\": {}, \"sheds\": {}, \
             \"healthy_refusals\": {}, \"wal_retries\": {}, \"degraded_sheds\": {}, \
             \"wal_rejoins\": {}, \"ckpt_failures\": {}, \"scrub_corruptions\": {}",
            o.report.shard_health,
            o.acked_puts,
            o.sheds,
            o.healthy_refusals,
            w.wal_retries,
            w.degraded_sheds,
            w.wal_rejoins,
            w.checkpoint_failures,
            w.scrub_corruptions,
        );
    }
    body.push_str("}\n");
    std::fs::write("STORAGE_FAULT_FAILURE.json", &body).expect("write STORAGE_FAULT_FAILURE.json");
    eprintln!("FAIL {} {}: {detail}", backend.name(), plan.name());
    eprintln!("failing configuration written to STORAGE_FAULT_FAILURE.json");
    std::process::exit(1);
}

/// Run one cell on a watched thread: a hang is a reported failure.
fn monitored(backend: Backend, plan: Plan, cfg: &Cfg, index: usize) -> Result<CellOut, String> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tag = format!(
        "txkv-storage-soak-{}-{}-{}",
        std::process::id(),
        plan.name(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let worker = {
        let cfg = cfg.clone();
        let seed = 0x5EED ^ (index as u64).wrapping_mul(0x9E37_79B9);
        std::thread::spawn(move || dispatch(backend, plan, &cfg, &tag, seed))
    };
    let deadline = Duration::from_secs(180);
    let t0 = Instant::now();
    while !worker.is_finished() {
        if t0.elapsed() > deadline {
            return Err(format!("cell hung (no completion within {deadline:?})"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    worker.join().map_err(|p| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("cell panicked: {msg}")
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (backends, plans, cfg): (&[Backend], &[Plan], Cfg) = if smoke {
        (
            &[Backend::SiHtm, Backend::Htm],
            &[Plan::Weather, Plan::DeadShard],
            Cfg { clients: 2, ops_per_client: 250 },
        )
    } else {
        (&Backend::ALL, &Plan::ALL, Cfg { clients: 3, ops_per_client: 1_200 })
    };

    // Fault installation is process-global and exclusive; cells run
    // strictly one at a time, each dropping its guard before the next.
    let mut rows = Vec::new();
    let t0 = Instant::now();
    for (index, &backend) in backends.iter().enumerate() {
        for &plan in plans {
            match monitored(backend, plan, &cfg, index * Plan::ALL.len() + plan as usize) {
                Ok(out) => {
                    if let Err(detail) = check(plan, &out) {
                        fail(backend, plan, &detail, Some(&out));
                    }
                    println!(
                        "ok   {:6} {:11} replies={:<6} acked_puts={:<5} sheds={:<5} \
                         retries={} rejoins={} ckpt_fails={} scrub={}p/{}c injected[fsync={} \
                         short={} corrupt={} stall={}]",
                        backend.name(),
                        plan.name(),
                        out.report.replies,
                        out.acked_puts,
                        out.sheds,
                        out.report.wal.wal_retries,
                        out.report.wal.wal_rejoins,
                        out.report.wal.checkpoint_failures,
                        out.report.wal.scrub_passes,
                        out.report.wal.scrub_corruptions,
                        out.injected.sync_fails,
                        out.injected.short_writes,
                        out.injected.corruptions,
                        out.injected.stalls,
                    );
                    rows.push(row_json(backend, plan, &out));
                }
                Err(detail) => fail(backend, plan, &detail, None),
            }
        }
    }

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "  {row}{sep}");
    }
    json.push(']');
    schema::STORAGE_SOAK.write("STORAGE_SOAK.json", &json).expect("write STORAGE_SOAK.json");
    println!(
        "storage soak passed: {} cells ({} backends x {} plans) in {:.1?} -> STORAGE_SOAK.json",
        rows.len(),
        backends.len(),
        plans.len(),
        t0.elapsed()
    );
}
