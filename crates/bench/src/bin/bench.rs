//! Directory ablation bench: the hash-map workload at several thread
//! counts, on the same machine with the lock-free ownership table vs the
//! original mutex-sharded directory, for each HTM-based backend.
//!
//! Emits `BENCH_1.json` (a versioned `bench::schema` envelope whose rows
//! carry the throughput, the per-op latency percentiles, plus the full
//! abort taxonomy: conflict / non-tx / capacity / explicit aborts,
//! quiescence waits and slots polled, SGL acquisitions, and per-path
//! commit counts) plus a human-readable summary with per-thread-count
//! speedups. Running both directory kinds in one process keeps the
//! comparison apples-to-apples: same build, same box, same load, back to
//! back.
//!
//! Environment overrides: `HTM_SIM_DIR=locked|lockfree` restricts the run
//! to one directory kind (default: both, for the ablation);
//! `HTM_SIM_PIN=scatter|pack` selects the thread-pinning layout.
//!
//! Usage: `cargo run --release --bin bench [-- --quick]`

use bench::{hashmap_point_with, Backend, Point};
use htm_sim::{DirectoryKind, HtmConfig, PinLayout};
use std::fmt::Write as _;
use std::time::Duration;
use workloads::hashmap::HashMapConfig;

const THREADS: [usize; 4] = [1, 8, 32, 80];
const BACKENDS: [Backend; 3] = [Backend::Htm, Backend::P8tm, Backend::SiHtm];

struct Row {
    backend: &'static str,
    directory: &'static str,
    threads: usize,
    point: Point,
}

/// Directory kinds to measure: both (the ablation) unless `HTM_SIM_DIR`
/// picks one.
fn directory_kinds() -> Vec<DirectoryKind> {
    match std::env::var("HTM_SIM_DIR") {
        Ok(v) => {
            let kind = DirectoryKind::parse(&v)
                .unwrap_or_else(|| panic!("HTM_SIM_DIR: unknown directory kind '{v}'"));
            vec![kind]
        }
        Err(_) => vec![DirectoryKind::Locked, DirectoryKind::LockFree],
    }
}

fn pin_layout() -> PinLayout {
    match std::env::var("HTM_SIM_PIN") {
        Ok(v) => {
            PinLayout::parse(&v).unwrap_or_else(|| panic!("HTM_SIM_PIN: unknown pin layout '{v}'"))
        }
        Err(_) => PinLayout::default(),
    }
}

fn dir_name(kind: DirectoryKind) -> &'static str {
    match kind {
        DirectoryKind::LockFree => "lockfree",
        DirectoryKind::Locked => "locked",
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, duration) = if quick {
        (Duration::from_millis(10), Duration::from_millis(50))
    } else {
        (Duration::from_millis(50), Duration::from_millis(300))
    };
    // The paper's §4.1 grid point behind Fig. 6: large footprint (chain
    // 200, so lookups overflow the TMCAM and plain HTM collapses), 90 %
    // lookups (the read-dominated mix where SI-HTM's non-transactional
    // read fast path matters most), high contention (10 buckets keeps the
    // node array cache-resident, so the directory probes — the thing this
    // ablation measures — are not drowned out by DRAM pointer-chasing).
    let cfg = HashMapConfig::paper(true, 0.9, true);
    let kinds = directory_kinds();
    let pin = pin_layout();

    let mut rows = Vec::new();
    for &threads in &THREADS {
        for backend in BACKENDS {
            for &kind in &kinds {
                // Raw-cost ablation: disable the untracked-read cost
                // compensation (see `HtmConfig::untracked_read_spin`) so
                // both directory variants are measured without the
                // simulated-uniformity padding.
                let htm_cfg = HtmConfig {
                    directory: kind,
                    pin,
                    untracked_read_spin: 0,
                    ..HtmConfig::default()
                };
                let point = hashmap_point_with(backend, htm_cfg, &cfg, threads, warmup, duration);
                eprintln!(
                    "{:>7} {:>8} {:>3} threads: {:>12.0} ops/s",
                    point.backend,
                    dir_name(kind),
                    threads,
                    point.throughput
                );
                rows.push(Row {
                    backend: point.backend,
                    directory: dir_name(kind),
                    threads,
                    point,
                });
            }
        }
    }

    // JSON out (hand-rolled; all fields are numbers or fixed strings).
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let s = &r.point.report.total;
        let attempts =
            s.commits + s.aborts_conflict + s.aborts_nontx + s.aborts_capacity + s.aborts_explicit;
        let abort_rate =
            if attempts == 0 { 0.0 } else { (attempts - s.commits) as f64 / attempts as f64 };
        let lat = &r.point.report.latency;
        let (p50, p90, p99, p999) = lat.percentiles();
        writeln!(
            json,
            "  {{\"backend\": \"{}\", \"directory\": \"{}\", \"pin\": \"{}\", \"threads\": {}, \
             \"ops_per_sec\": {:.1}, \"commits\": {}, \"ro_commits\": {}, \"sgl_commits\": {}, \
             \"sw_commits\": {}, \"aborts_conflict\": {}, \"aborts_nontx\": {}, \
             \"aborts_capacity\": {}, \"aborts_explicit\": {}, \"abort_rate\": {:.4}, \
             \"quiesce_waits\": {}, \"quiesce_polled\": {}, \"sgl_acquisitions\": {}, \
             \"starved_threads\": {}, \"watchdog_quiesce_trips\": {}, \
             \"watchdog_drain_trips\": {}, \"backoffs\": {}, \"lat_p50_ns\": {}, \
             \"lat_p90_ns\": {}, \"lat_p99_ns\": {}, \"lat_p999_ns\": {}, \
             \"lat_mean_ns\": {:.0}}}{sep}",
            r.backend,
            r.directory,
            pin.name(),
            r.threads,
            r.point.throughput,
            s.commits,
            s.ro_commits,
            s.sgl_commits,
            s.sw_commits,
            s.aborts_conflict,
            s.aborts_nontx,
            s.aborts_capacity,
            s.aborts_explicit,
            abort_rate,
            s.quiesce_waits,
            s.quiesce_polled,
            s.sgl_acquisitions,
            r.point.report.starved_threads,
            s.watchdog_quiesce_trips,
            s.watchdog_drain_trips,
            s.backoffs,
            p50,
            p90,
            p99,
            p999,
            lat.mean_ns(),
        )
        .unwrap();
    }
    json.push(']');
    let out = "BENCH_1.json";
    bench::schema::BENCH_1.write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));

    // Aggregate speedup per thread count: sum of ops/s across backends,
    // lock-free over locked. Only meaningful when both kinds were run.
    if kinds.len() == 2 {
        println!("\nthreads  locked(aggregate)  lockfree(aggregate)  speedup");
        for &threads in &THREADS {
            let sum = |dir: &str| -> f64 {
                rows.iter()
                    .filter(|r| r.threads == threads && r.directory == dir)
                    .map(|r| r.point.throughput)
                    .sum()
            };
            let locked = sum("locked");
            let lockfree = sum("lockfree");
            println!("{threads:>7}  {locked:>17.0}  {lockfree:>19.0}  {:>6.2}x", lockfree / locked);
        }
    }
    println!("\nwrote {out}");
}
