//! Regenerate the paper's figures as tables/CSV.
//!
//! ```text
//! figures --all                      # every figure, paper thread axis
//! figures --fig 9                    # one figure (both contention levels)
//! figures --fig 6 --threads 1,4,8    # custom thread axis
//! figures --duration-ms 500          # per-point measurement interval
//! figures --check                    # reduced sweep + paper-shape assertions
//! figures --csv results.csv          # also write machine-readable CSV
//! ```
//!
//! Absolute throughput is not comparable to the paper's POWER8 numbers
//! (the substrate here is a functional simulator — see DESIGN.md); the
//! reproduction targets are the *shapes*: who wins per scenario, the
//! abort-breakdown composition, and where SMT helps or hurts.

use bench::{all_scenarios, figure, hashmap_point, tpcc_point, Backend, Point, Workload};
use std::io::Write as _;
use std::time::Duration;

struct Args {
    figs: Vec<u32>,
    threads: Vec<usize>,
    warmup: Duration,
    duration: Duration,
    check: bool,
    csv: Option<String>,
    gnuplot: Option<String>,
    backends: Option<Vec<Backend>>,
}

fn parse_args() -> Args {
    let mut args = Args {
        figs: vec![],
        threads: bench::PAPER_THREADS.to_vec(),
        warmup: Duration::from_millis(100),
        duration: Duration::from_millis(500),
        check: false,
        csv: None,
        gnuplot: None,
        backends: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => args.figs = vec![6, 7, 8, 9, 10],
            "--fig" => {
                let v = it.next().expect("--fig N");
                args.figs.push(v.parse().expect("figure number"));
            }
            "--threads" => {
                let v = it.next().expect("--threads LIST");
                args.threads = v.split(',').map(|t| t.parse().expect("thread count")).collect();
            }
            "--warmup-ms" => {
                args.warmup = Duration::from_millis(it.next().expect("ms").parse().expect("ms"));
            }
            "--duration-ms" => {
                args.duration = Duration::from_millis(it.next().expect("ms").parse().expect("ms"));
            }
            "--backend" => {
                let v = it.next().expect("--backend NAME");
                let b = Backend::parse(&v).unwrap_or_else(|| panic!("unknown backend {v}"));
                args.backends.get_or_insert_with(Vec::new).push(b);
            }
            "--check" => args.check = true,
            "--csv" => args.csv = Some(it.next().expect("--csv PATH")),
            "--gnuplot" => args.gnuplot = Some(it.next().expect("--gnuplot DIR")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--all | --fig N ...] [--threads a,b,c] \
                     [--duration-ms N] [--warmup-ms N] [--backend NAME ...] \
                     [--csv PATH] [--gnuplot DIR] [--check]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other} (try --help)"),
        }
    }
    if args.figs.is_empty() && !args.check {
        args.figs = vec![6, 7, 8, 9, 10];
    }
    args
}

fn run_scenario(
    s: &bench::Scenario,
    threads: &[usize],
    backends: &Option<Vec<Backend>>,
    warmup: Duration,
    duration: Duration,
    csv: &mut Option<std::fs::File>,
) -> Vec<Point> {
    println!("\n== Figure {}: {} ==", s.figure, s.caption);
    println!(
        "{:<8} {:>7} {:>14} {:>9} {:>9} {:>9} {:>9}",
        "backend", "threads", "tx/s", "abort%", "tx%", "non-tx%", "cap%"
    );
    let mut points = Vec::new();
    for &b in s.backends {
        if let Some(only) = backends {
            if !only.contains(&b) {
                continue;
            }
        }
        for &t in threads {
            let p = match &s.workload {
                Workload::HashMap(cfg) => hashmap_point(b, cfg, t, warmup, duration),
                Workload::Tpcc(cfg) => tpcc_point(b, cfg, t, warmup, duration),
            };
            let types = p
                .mix
                .as_ref()
                .map(|m| {
                    format!(
                        "  no/pay/os/del/sl {}∕{}∕{}∕{}∕{}",
                        m.new_order, m.payment, m.order_status, m.delivery, m.stock_level
                    )
                })
                .unwrap_or_default();
            println!(
                "{:<8} {:>7} {:>14.0} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%{}",
                p.backend,
                p.threads,
                p.throughput,
                p.report.total.abort_rate(),
                p.abort_tx,
                p.abort_nontx,
                p.abort_capacity,
                types,
            );
            if let Some(f) = csv {
                writeln!(f, "{}", p.csv(s.id)).expect("csv write");
            }
            points.push(p);
        }
    }
    points
}

fn peak(points: &[Point], backend: &str) -> f64 {
    points.iter().filter(|p| p.backend == backend).map(|p| p.throughput).fold(0.0, f64::max)
}

/// Best ratio `a/b` over matched thread counts. Peak-vs-peak comparisons
/// are misleading on over-subscribed hosts (a backend's 1-thread point
/// would compete with another's multi-thread points), so the shape checks
/// compare like with like and take the most favourable thread count — the
/// paper's "up to X %" phrasing.
fn best_matched_ratio(points: &[Point], a: &str, b: &str) -> f64 {
    let mut best = 0.0f64;
    for pa in points.iter().filter(|p| p.backend == a) {
        if let Some(pb) = points.iter().find(|p| p.backend == b && p.threads == pa.threads) {
            if pb.throughput > 0.0 {
                best = best.max(pa.throughput / pb.throughput);
            }
        }
    }
    best
}

/// Reduced sweep + assertions on the paper's qualitative claims.
fn check(warmup: Duration, duration: Duration) {
    let threads = [1, 4, 8, 16];
    let mut failures: Vec<String> = Vec::new();
    let mut pass = |name: &str, ok: bool, detail: String| {
        println!("[{}] {name}: {detail}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            failures.push(name.to_string());
        }
    };

    // Claim 1 (Fig. 6 low): large read-dominated hash-map — SI-HTM far
    // ahead of HTM (paper: +576 % peak).
    let s = &figure(6)[0];
    let pts = run_scenario(s, &threads, &None, warmup, duration, &mut None);
    let r = best_matched_ratio(&pts, "SI-HTM", "HTM");
    pass(
        "fig6-low: SI-HTM >> HTM on large read-dominated",
        r > 1.5,
        format!("best matched-thread ratio {r:.2}x (paper: up to 6.8x peak)"),
    );

    // Claim 2 (Fig. 8): small transactions — HTM at least competitive
    // (paper: SI-HTM unable to surpass HTM).
    let s = &figure(8)[0];
    let pts = run_scenario(s, &threads, &None, warmup, duration, &mut None);
    let (si, htm) = (peak(&pts, "SI-HTM"), peak(&pts, "HTM"));
    pass(
        "fig8-low: HTM competitive on small txs",
        htm > si * 0.7,
        format!("HTM {htm:.0} vs SI-HTM {si:.0} tx/s"),
    );

    // Claim 3 (Fig. 10): TPC-C read-dominated — SI-HTM beats plain HTM
    // clearly (paper: up to +300 %).
    let s = &figure(10)[0];
    let pts = run_scenario(s, &threads, &None, warmup, duration, &mut None);
    let r = best_matched_ratio(&pts, "SI-HTM", "HTM");
    pass(
        "fig10-low: SI-HTM >> HTM on read-dominated TPC-C",
        r > 1.5,
        format!("best matched-thread ratio {r:.2}x (paper: up to 4x peak)"),
    );
    let rp = best_matched_ratio(&pts, "SI-HTM", "P8TM");
    pass(
        "fig10-low: SI-HTM >= P8TM (no read instrumentation)",
        rp > 1.0,
        format!("best matched-thread ratio {rp:.2}x (paper: +27% peak)"),
    );

    if failures.is_empty() {
        println!("\nAll shape checks passed.");
    } else {
        println!("\nFAILED checks: {failures:?}");
        std::process::exit(1);
    }
}

/// Write gnuplot-ready `.dat` series (threads vs throughput, one column
/// per backend) and a `.gp` script per scenario — the output format the
/// paper's artifact produces for its plots.
fn write_gnuplot(dir: &str, scenario: &bench::Scenario, points: &[Point]) {
    use std::fmt::Write as _;
    std::fs::create_dir_all(dir).expect("create gnuplot dir");
    let mut backends: Vec<&str> = points.iter().map(|p| p.backend).collect();
    backends.dedup();
    let mut threads: Vec<usize> = points.iter().map(|p| p.threads).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut dat = String::from("# threads");
    for b in &backends {
        let _ = write!(dat, " {b}");
    }
    dat.push('\n');
    for t in &threads {
        let _ = write!(dat, "{t}");
        for b in &backends {
            let v = points
                .iter()
                .find(|p| p.threads == *t && p.backend == *b)
                .map(|p| p.throughput)
                .unwrap_or(f64::NAN);
            let _ = write!(dat, " {v:.0}");
        }
        dat.push('\n');
    }
    std::fs::write(format!("{dir}/{}.dat", scenario.id), dat).expect("write .dat");

    let mut gp = format!(
        "set terminal postscript eps enhanced color size 4,3\n\
         set output '{id}.eps'\n\
         set title \"{caption}\"\n\
         set xlabel 'Number of threads'\n\
         set ylabel 'Throughput (Tx/s)'\n\
         set key top right\n\
         set logscale x 2\n\
         plot ",
        id = scenario.id,
        caption = scenario.caption,
    );
    for (i, b) in backends.iter().enumerate() {
        if i > 0 {
            gp.push_str(", ");
        }
        let _ = write!(
            gp,
            "'{id}.dat' using 1:{col} with linespoints title '{b}'",
            id = scenario.id,
            col = i + 2,
        );
    }
    gp.push('\n');
    std::fs::write(format!("{dir}/{}.gp", scenario.id), gp).expect("write .gp");
}

fn main() {
    let args = parse_args();
    if args.check {
        check(args.warmup, args.duration);
        return;
    }
    let mut csv = args.csv.as_ref().map(|p| {
        let mut f = std::fs::File::create(p).expect("create csv");
        writeln!(f, "{}", Point::csv_header()).expect("csv header");
        f
    });
    for s in all_scenarios() {
        if !args.figs.contains(&s.figure) {
            continue;
        }
        let points =
            run_scenario(&s, &args.threads, &args.backends, args.warmup, args.duration, &mut csv);
        if let Some(dir) = &args.gnuplot {
            write_gnuplot(dir, &s, &points);
        }
    }
    if let Some(p) = &args.csv {
        println!("\nCSV written to {p}");
    }
    if let Some(d) = &args.gnuplot {
        println!("gnuplot series written to {d}/");
    }
}
