//! Checkable scenarios: a backend, a workload with per-thread bodies, the
//! watched address range, the initial memory image, and the end-of-run
//! invariants.
//!
//! Bodies are **schedule-independent**: each thread's operation sequence
//! is a pure function of `(seed, tid)`, so the only source of variation
//! between runs of the same seed is the scheduler's choice trace — which
//! is exactly what replay pins down.

use crate::sched::FaultPlan;
use htm_sgl::{HtmSgl, HtmSglConfig};
use htm_sim::HtmConfig;
use p8tm::{P8tm, P8tmConfig};
use si_htm::{SiHtm, SiHtmConfig};
use silo::Silo;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tm_api::{TmBackend, TmThread, TxKind};
use txkv::durability::{Append, CrashSite, CrashSpec, DurabilityConfig, DurabilityMode, WalSet};
use txkv::shard::{apply_part, group_adds, prepare_part, undo_part, ShardPart};
use txkv::{recover, KvStore, LocalTx, PushError, ShardMap, SubmitQueue, XLock};
use txkv_schema::{def_key, def_row, Index, Table};
use txmem::hooks::{self, Event};
use txmem::{round_up_to_line, Addr, LineAlloc, TxMemory, WORDS_PER_LINE};
use workloads::bank::Bank;
use workloads::btree::{NodeScratch, TxBTree};

/// Which TM backend to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Plain best-effort HTM + single global lock (`htm-sgl`).
    Htm,
    /// SI-HTM (the paper's system).
    SiHtm,
    /// P8TM comparator (serializable, instrumented reads).
    P8tm,
    /// Silo-style software OCC.
    Silo,
}

impl BackendKind {
    pub const ALL: [BackendKind; 4] =
        [BackendKind::Htm, BackendKind::SiHtm, BackendKind::P8tm, BackendKind::Silo];

    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Htm => "htm",
            BackendKind::SiHtm => "si-htm",
            BackendKind::P8tm => "p8tm",
            BackendKind::Silo => "silo",
        }
    }

    /// The consistency model the oracle holds this backend to.
    pub fn is_si(self) -> bool {
        matches!(self, BackendKind::SiHtm)
    }
}

/// Which workload the threads run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Disjoint counters + read-only sums; invariant: no lost updates.
    Counter,
    /// Bank transfers + full-sweep audits; invariant: conservation, and
    /// every committed audit observes the conserved total.
    Bank,
    /// Concurrent B+-tree; invariant: structural well-formedness.
    Btree,
    /// txkv submission-queue handoff: client threads push transfer /
    /// audit requests through a bounded [`txkv::SubmitQueue`]; an
    /// executor thread serves updates one-by-one and read-only audits as
    /// snapshot batches. Invariants: every accepted request is served,
    /// balances conserved, and every committed audit batch observed the
    /// conserved total.
    Txkv,
    /// Cross-shard 2PC: TWO independent backend instances (one per
    /// shard, globally disjoint address ranges); threads mix shard-local
    /// transfers, cross-shard transfers run as two-phase commit over
    /// per-shard transactions (the txkv sharding protocol), and global
    /// audits under both coordination locks. Invariants: no audit
    /// observes a half-applied cross-shard transfer, and the global
    /// balance is conserved.
    XShard,
    /// Durability: the xshard shape plus a real per-shard WAL
    /// ([`txkv::WalSet`]) driven through the full commit-ordered logging
    /// protocol — local updates append post-images under the commit
    /// lock, cross-shard transfers write the 2PC record sequence
    /// (XBegin / XApply / XDecide / XAbort), and a seed-scripted
    /// [`txkv::CrashSpec`] cuts the power mid-run at a
    /// schedule-dependent point. Invariants: after recovery from the
    /// surviving logs, balances are conserved (no torn cross-shard
    /// state) and every sync-acked write is present.
    Recovery,
    /// Typed table + secondary index (`txkv-schema`): threads move rows
    /// between groups, maintaining the multi-valued `by_group` index in
    /// the **same** transaction as the base-column write; read-only
    /// transactions check base ↔ index agreement inside one snapshot.
    /// Invariants: no committed reader sees them disagree, every
    /// committed row is reachable through the index, no index entry
    /// dangles, and no group move is lost.
    TypedIndex,
}

impl WorkloadKind {
    pub const ALL: [WorkloadKind; 7] = [
        WorkloadKind::Counter,
        WorkloadKind::Bank,
        WorkloadKind::Btree,
        WorkloadKind::Txkv,
        WorkloadKind::XShard,
        WorkloadKind::Recovery,
        WorkloadKind::TypedIndex,
    ];

    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Counter => "counter",
            WorkloadKind::Bank => "bank",
            WorkloadKind::Btree => "btree",
            WorkloadKind::Txkv => "txkv",
            WorkloadKind::XShard => "xshard",
            WorkloadKind::Recovery => "recovery",
            WorkloadKind::TypedIndex => "typed-index",
        }
    }
}

/// Full configuration of one check run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    pub backend: BackendKind,
    pub workload: WorkloadKind,
    pub threads: usize,
    pub txns_per_thread: usize,
    /// Yield-point budget before the run degrades to free-running
    /// (inconclusive) execution.
    pub max_steps: u64,
    pub faults: FaultPlan,
    /// Seeded bug: disable SI-HTM's pre-commit quiescence ("the safety
    /// wait"), which tm-check must expose as an SI violation.
    pub break_si: bool,
    /// Seeded bug: the xshard coordinator "crashes" between its two
    /// participant applies — the second apply never runs and no
    /// compensation fires. tm-check must catch the half-applied
    /// transfer (torn audit or broken conservation).
    pub break_2pc: bool,
    /// Seeded bug: the typed-index workload skips secondary-index
    /// maintenance when moving a row between groups (base write only).
    /// tm-check must catch the unreachable row / dangling entry.
    pub break_index: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            backend: BackendKind::SiHtm,
            workload: WorkloadKind::Bank,
            threads: 3,
            txns_per_thread: 8,
            max_steps: 500_000,
            faults: FaultPlan::default(),
            break_si: false,
            break_2pc: false,
            break_index: false,
        }
    }
}

/// Type-erased backend handle.
#[derive(Clone)]
pub enum AnyBackend {
    Htm(HtmSgl),
    Si(SiHtm),
    P8(P8tm),
    Silo(Silo),
}

impl AnyBackend {
    pub fn memory(&self) -> &TxMemory {
        match self {
            AnyBackend::Htm(b) => b.memory(),
            AnyBackend::Si(b) => b.memory(),
            AnyBackend::P8(b) => b.memory(),
            AnyBackend::Silo(b) => b.memory(),
        }
    }

    fn register(&self) -> Box<dyn TmThread + Send> {
        match self {
            AnyBackend::Htm(b) => Box::new(b.register_thread()),
            AnyBackend::Si(b) => Box::new(b.register_thread()),
            AnyBackend::P8(b) => Box::new(b.register_thread()),
            AnyBackend::Silo(b) => Box::new(b.register_thread()),
        }
    }
}

/// A ready-to-run scenario.
pub struct Scenario {
    pub backend: AnyBackend,
    pub watched: Range<Addr>,
    /// Non-zero initial values of the watched range.
    pub init: HashMap<Addr, u64>,
    pub bodies: Vec<Box<dyn FnOnce() + Send>>,
    /// End-of-run workload invariants; `Some(message)` on violation.
    pub check_invariants: Box<dyn FnOnce() -> Option<String>>,
}

/// Deterministic per-thread operation generator (split-mix style).
struct OpRng(u64);

impl OpRng {
    fn new(seed: u64, tid: usize) -> Self {
        OpRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(tid as u64) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn make_backend(cfg: &CheckConfig, mem_words: usize) -> AnyBackend {
    // A small SMT-2 topology keeps the schedule space dense while still
    // exercising TMCAM sharing between SMT siblings.
    let htm_config =
        HtmConfig { cores: 2, smt: cfg.threads.div_ceil(2).max(1), ..HtmConfig::default() };
    match cfg.backend {
        BackendKind::Htm => {
            AnyBackend::Htm(HtmSgl::new(htm_config, mem_words, HtmSglConfig::default()))
        }
        BackendKind::SiHtm => {
            let si = SiHtmConfig { quiescence: !cfg.break_si, ..SiHtmConfig::default() };
            AnyBackend::Si(SiHtm::new(htm_config, mem_words, si))
        }
        BackendKind::P8tm => {
            AnyBackend::P8(P8tm::new(htm_config, mem_words, P8tmConfig::default()))
        }
        BackendKind::Silo => AnyBackend::Silo(Silo::new(mem_words)),
    }
}

fn snapshot_init(memory: &TxMemory, watched: &Range<Addr>) -> HashMap<Addr, u64> {
    let mut init = HashMap::new();
    for addr in watched.clone() {
        let v = memory.load(addr);
        if v != 0 {
            init.insert(addr, v);
        }
    }
    init
}

/// Build the scenario for `cfg` and `seed`.
pub fn build(cfg: &CheckConfig, seed: u64) -> Scenario {
    match cfg.workload {
        WorkloadKind::Counter => build_counter(cfg, seed),
        WorkloadKind::Bank => build_bank(cfg, seed),
        WorkloadKind::Btree => build_btree(cfg, seed),
        WorkloadKind::Txkv => build_txkv(cfg, seed),
        WorkloadKind::XShard => build_xshard(cfg, seed),
        WorkloadKind::Recovery => build_recovery(cfg, seed),
        WorkloadKind::TypedIndex => build_typed_index(cfg, seed),
    }
}

const COUNTERS: u64 = 4;

fn build_counter(cfg: &CheckConfig, seed: u64) -> Scenario {
    let mem_words = (COUNTERS as usize) * WORDS_PER_LINE;
    let backend = make_backend(cfg, mem_words);
    let watched = 0..round_up_to_line(mem_words as u64);
    let init = HashMap::new();
    let increments = Arc::new(AtomicU64::new(0));
    let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for tid in 0..cfg.threads {
        let mut thread = backend.register();
        let mut rng = OpRng::new(seed, tid);
        let txns = cfg.txns_per_thread;
        let increments = Arc::clone(&increments);
        bodies.push(Box::new(move || {
            for _ in 0..txns {
                if rng.below(5) < 4 {
                    let c = rng.below(COUNTERS);
                    let addr = c * WORDS_PER_LINE as u64;
                    let out = thread.exec(TxKind::Update, &mut |tx| {
                        let v = tx.read(addr)?;
                        tx.write(addr, v + 1)
                    });
                    if out == tm_api::Outcome::Committed {
                        increments.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    thread.exec(TxKind::ReadOnly, &mut |tx| {
                        let mut sum = 0;
                        for c in 0..COUNTERS {
                            sum += tx.read(c * WORDS_PER_LINE as u64)?;
                        }
                        std::hint::black_box(sum);
                        Ok(())
                    });
                }
            }
        }));
    }
    let b2 = backend.clone();
    Scenario {
        backend,
        watched,
        init,
        bodies,
        check_invariants: Box::new(move || {
            let done = increments.load(Ordering::Relaxed);
            let sum: u64 = (0..COUNTERS).map(|c| b2.memory().load(c * WORDS_PER_LINE as u64)).sum();
            (sum != done).then(|| {
                format!("lost updates: {done} committed increments but counters sum to {sum}")
            })
        }),
    }
}

const ACCOUNTS: u64 = 4;
const INITIAL_BALANCE: u64 = 1000;

fn build_bank(cfg: &CheckConfig, seed: u64) -> Scenario {
    let mem_words = Bank::memory_words(ACCOUNTS);
    let backend = make_backend(cfg, mem_words);
    let bank = Bank::build(backend.memory(), 0, ACCOUNTS, INITIAL_BALANCE);
    let watched = 0..round_up_to_line(mem_words as u64);
    let init = snapshot_init(backend.memory(), &watched);
    let expected_total = ACCOUNTS * INITIAL_BALANCE;
    let broken_audits = Arc::new(AtomicU64::new(0));
    let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for tid in 0..cfg.threads {
        let mut thread = backend.register();
        let mut rng = OpRng::new(seed, tid);
        let txns = cfg.txns_per_thread;
        let broken = Arc::clone(&broken_audits);
        bodies.push(Box::new(move || {
            for _ in 0..txns {
                if rng.below(5) < 3 {
                    let from = rng.below(ACCOUNTS);
                    let to = (from + 1 + rng.below(ACCOUNTS - 1)) % ACCOUNTS;
                    let amount = 1 + rng.below(10);
                    thread.exec(TxKind::Update, &mut |tx| {
                        bank.transfer(tx, from, to, amount)?;
                        Ok(())
                    });
                } else {
                    let mut sum = 0;
                    let out = thread.exec(TxKind::ReadOnly, &mut |tx| {
                        sum = bank.audit(tx)?;
                        Ok(())
                    });
                    if out == tm_api::Outcome::Committed && sum != expected_total {
                        broken.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    let b2 = backend.clone();
    Scenario {
        backend,
        watched,
        init,
        bodies,
        check_invariants: Box::new(move || {
            let broken = broken_audits.load(Ordering::Relaxed);
            if broken > 0 {
                return Some(format!(
                    "{broken} committed audit(s) observed a torn total (expected {expected_total})"
                ));
            }
            let total = bank.total(b2.memory());
            (total != expected_total)
                .then(|| format!("balance not conserved: {total} != {expected_total}"))
        }),
    }
}

fn build_btree(cfg: &CheckConfig, seed: u64) -> Scenario {
    const INITIAL_KEYS: u64 = 24;
    const KEY_SPACE: u64 = 64;
    let total_txns = (cfg.threads * cfg.txns_per_thread) as u64;
    let mem_words = workloads::btree::memory_words(INITIAL_KEYS + total_txns + 64);
    let backend = make_backend(cfg, mem_words);
    let alloc = Arc::new(LineAlloc::new(0, round_up_to_line(mem_words as u64)));
    let tree = TxBTree::build(
        backend.memory(),
        &alloc,
        (0..INITIAL_KEYS).map(|k| k * KEY_SPACE / INITIAL_KEYS),
    );
    let watched = 0..round_up_to_line(mem_words as u64);
    let init = snapshot_init(backend.memory(), &watched);
    let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for tid in 0..cfg.threads {
        let mut thread = backend.register();
        let mut rng = OpRng::new(seed, tid);
        let txns = cfg.txns_per_thread;
        let alloc = Arc::clone(&alloc);
        bodies.push(Box::new(move || {
            let mut scratch = NodeScratch::new(&alloc);
            for _ in 0..txns {
                let dice = rng.below(10);
                let key = rng.below(KEY_SPACE);
                if dice < 4 {
                    thread.exec(TxKind::ReadOnly, &mut |tx| {
                        std::hint::black_box(tree.lookup(tx, key)?);
                        Ok(())
                    });
                } else if dice < 7 {
                    let out = thread.exec(TxKind::Update, &mut |tx| {
                        scratch.reset();
                        tree.insert(tx, key, key + 1, &mut scratch)?;
                        Ok(())
                    });
                    if out == tm_api::Outcome::Committed {
                        scratch.refill(&alloc);
                    }
                } else if dice < 9 {
                    thread.exec(TxKind::Update, &mut |tx| {
                        tree.remove(tx, key)?;
                        Ok(())
                    });
                } else {
                    thread.exec(TxKind::ReadOnly, &mut |tx| {
                        std::hint::black_box(tree.range(tx, key, 8)?);
                        Ok(())
                    });
                }
            }
        }));
    }
    let b2 = backend.clone();
    Scenario {
        backend,
        watched,
        init,
        bodies,
        check_invariants: Box::new(move || {
            // `audit` panics on any structural malformation.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                std::hint::black_box(tree.audit(b2.memory()));
            }))
            .err()
            .map(|p| {
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "malformed".to_string());
                format!("btree audit failed: {msg}")
            })
        }),
    }
}

/// A request travelling through the txkv scenario's submission queue.
enum KvReq {
    /// Read-write multi-key transaction: move `amount` between accounts.
    Transfer { from: u64, to: u64, amount: u64 },
    /// Read-only full-sweep balance audit (served batched).
    Audit,
}

const KV_ACCOUNTS: u64 = 4;
const KV_INITIAL: u64 = 100;
/// At most this many audits are folded into one read-only transaction.
const KV_RO_BATCH: usize = 3;

/// The executor's serve loop: drain the queue until it is closed *and*
/// empty, serving updates one-by-one and read-only audits as a batch
/// inside **one** read-only transaction (the pipeline's batching rule).
/// Spins only through `Event::Poll` yield points, never a condvar — the
/// baton scheduler owns all blocking.
fn kv_serve_loop(
    queue: &SubmitQueue<KvReq>,
    store: &KvStore,
    thread: &mut (dyn TmThread + Send),
    served: &AtomicU64,
    broken_audits: &AtomicU64,
    expected_total: u64,
) {
    let mut scratch = store.new_batch_scratch(2);
    let mut batch: Vec<KvReq> = Vec::new();
    let mut sums: Vec<u64> = Vec::new();
    loop {
        if let Some(req) = queue.try_pop_update() {
            if let KvReq::Transfer { from, to, amount } = req {
                store.multi_add(
                    thread,
                    &mut scratch,
                    &[(from, -(amount as i64)), (to, amount as i64)],
                );
            }
            served.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        batch.clear();
        let n = queue.try_pop_ro_batch(KV_RO_BATCH, &mut batch);
        if n > 0 {
            let out = thread.exec(TxKind::ReadOnly, &mut |tx| {
                sums.clear();
                for _ in 0..n {
                    let mut sum = 0u64;
                    for k in 0..KV_ACCOUNTS {
                        sum = sum.wrapping_add(store.get_in(tx, k)?.unwrap_or(0));
                    }
                    sums.push(sum);
                }
                Ok(())
            });
            if out == tm_api::Outcome::Committed {
                for &s in &sums {
                    if s != expected_total {
                        broken_audits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            served.fetch_add(n as u64, Ordering::Relaxed);
            continue;
        }
        if queue.is_done() {
            break;
        }
        hooks::emit(Event::Poll);
    }
}

/// txkv handoff scenario: thread 0 is an executor serving a bounded
/// [`SubmitQueue`]; the other threads are clients pushing transfer
/// (read-write) and audit (read-only) requests, retrying through `Poll`
/// yield points on backpressure. A single-thread run degenerates to
/// enqueue-whole-script-then-serve (caps sized to fit). Invariants:
/// every accepted request is served, balances are conserved, and every
/// committed audit batch observed the conserved total.
fn build_txkv(cfg: &CheckConfig, seed: u64) -> Scenario {
    let mem_words = workloads::btree::memory_words(64);
    let backend = make_backend(cfg, mem_words);
    let store = KvStore::create_with(
        backend.memory(),
        0,
        round_up_to_line(mem_words as u64),
        (0..KV_ACCOUNTS).map(|k| (k, KV_INITIAL)),
    );
    let watched = 0..round_up_to_line(mem_words as u64);
    let init = snapshot_init(backend.memory(), &watched);
    let expected_total = KV_ACCOUNTS * KV_INITIAL;

    let single = cfg.threads == 1;
    let clients = if single { 1 } else { cfg.threads - 1 };
    // Tiny caps exercise Full-backpressure under schedule exploration;
    // the single-thread run instead needs room for its whole script.
    let cap = if single { cfg.txns_per_thread.max(1) } else { 4 };
    let queue = Arc::new(SubmitQueue::new(cap, cap));
    let submitted = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let broken_audits = Arc::new(AtomicU64::new(0));
    let clients_left = Arc::new(AtomicU64::new(clients as u64));

    // Client scripts are a pure function of (seed, tid): 60 % transfers,
    // 40 % audits.
    let make_ops = |tid: usize| -> Vec<KvReq> {
        let mut rng = OpRng::new(seed, tid);
        (0..cfg.txns_per_thread)
            .map(|_| {
                if rng.below(5) < 3 {
                    let from = rng.below(KV_ACCOUNTS);
                    let to = (from + 1 + rng.below(KV_ACCOUNTS - 1)) % KV_ACCOUNTS;
                    KvReq::Transfer { from, to, amount: 1 + rng.below(10) }
                } else {
                    KvReq::Audit
                }
            })
            .collect()
    };

    let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    {
        // Thread 0: the executor (in the single-thread case it enqueues
        // its whole script first, then serves it).
        let mut thread = backend.register();
        let queue = Arc::clone(&queue);
        let submitted = Arc::clone(&submitted);
        let served = Arc::clone(&served);
        let broken = Arc::clone(&broken_audits);
        let store = store.clone();
        let ops = single.then(|| make_ops(0));
        bodies.push(Box::new(move || {
            if let Some(ops) = ops {
                for op in ops {
                    let ro = matches!(op, KvReq::Audit);
                    queue.try_push(ro, op).unwrap_or_else(|_| {
                        panic!("single-thread caps sized to hold the whole script")
                    });
                    submitted.fetch_add(1, Ordering::Relaxed);
                }
                queue.close();
            }
            kv_serve_loop(&queue, &store, &mut *thread, &served, &broken, expected_total);
        }));
    }
    for tid in 1..cfg.threads {
        let ops = make_ops(tid);
        let queue = Arc::clone(&queue);
        let submitted = Arc::clone(&submitted);
        let clients_left = Arc::clone(&clients_left);
        bodies.push(Box::new(move || {
            for op in ops {
                let ro = matches!(op, KvReq::Audit);
                let mut item = op;
                loop {
                    match queue.try_push(ro, item) {
                        Ok(()) => break,
                        Err(PushError::Full(back)) => {
                            // Backpressure: yield so the executor drains.
                            item = back;
                            hooks::emit(Event::Poll);
                        }
                        Err(PushError::Closed(_)) => {
                            unreachable!("the last client closes the queue after its script")
                        }
                    }
                }
                submitted.fetch_add(1, Ordering::Relaxed);
                // One yield point per accepted request enriches the
                // explored interleavings of the handoff itself.
                hooks::emit(Event::Poll);
            }
            if clients_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                queue.close();
            }
        }));
    }

    let b2 = backend.clone();
    Scenario {
        backend,
        watched,
        init,
        bodies,
        check_invariants: Box::new(move || {
            let broken = broken_audits.load(Ordering::Relaxed);
            if broken > 0 {
                return Some(format!(
                    "{broken} committed audit(s) observed a torn total (expected {expected_total})"
                ));
            }
            let sub = submitted.load(Ordering::Relaxed);
            let srv = served.load(Ordering::Relaxed);
            if sub != srv {
                return Some(format!("handoff dropped requests: {sub} accepted, {srv} served"));
            }
            let mut total = 0u64;
            for k in 0..KV_ACCOUNTS {
                total = total.wrapping_add(store.load_raw(b2.memory(), k).unwrap_or(0));
            }
            (total != expected_total)
                .then(|| format!("balances not conserved: {total} != {expected_total}"))
        }),
    }
}

/// Accounts per shard in the xshard scenario (shard 0 owns keys
/// `[0, XKV_PER_SHARD)`, shard 1 owns `[XKV_PER_SHARD, 2*XKV_PER_SHARD)`).
const XKV_PER_SHARD: u64 = 4;

/// Cross-shard 2PC scenario: two *independent* backend instances, one per
/// shard, each with its own memory, conflict directory, and quiescence
/// domain — the scale-out shape `txkv::Pipeline::start_sharded` deploys.
///
/// Both memories are sized `2*span` words but shard `s`'s store arena
/// occupies only `[s*span, (s+1)*span)`, so every *data* address is
/// globally unique: the two backends' events interleave into one
/// well-formed history and the SI / serializability oracles never see
/// shard 0's writes aliasing shard 1's. Equal sizing matters for the
/// synthetic addresses too — a backend's lock-subscription reads target
/// `memory_size` (one past the end), so with equal sizes every synthetic
/// address lands at `>= 2*span`, outside the watched range, exactly as
/// in the single-backend scenarios. Each per-shard transaction of a
/// cross-shard 2PC is an
/// individually valid transaction on its own backend, so the oracles
/// hold without modification; *cross-shard atomicity* is checked by the
/// workload invariants (locked global audits + end-of-run conservation),
/// which is exactly the property the 2PC protocol — not any backend —
/// must provide.
///
/// With `cfg.break_2pc` the coordinator "crashes" between its two
/// participant applies (no second apply, no compensation), and the
/// checker must flag the half-applied transfer.
fn build_xshard(cfg: &CheckConfig, seed: u64) -> Scenario {
    let span = round_up_to_line(workloads::btree::memory_words(64) as u64);
    let shard0 = make_backend(cfg, 2 * span as usize);
    let shard1 = make_backend(cfg, 2 * span as usize);
    let map = ShardMap::range(2, XKV_PER_SHARD);
    let store0 =
        KvStore::create_with(shard0.memory(), 0, span, (0..XKV_PER_SHARD).map(|k| (k, KV_INITIAL)));
    let store1 = KvStore::create_with(
        shard1.memory(),
        span,
        span,
        (XKV_PER_SHARD..2 * XKV_PER_SHARD).map(|k| (k, KV_INITIAL)),
    );
    let watched = 0..2 * span;
    let mut init = snapshot_init(shard0.memory(), &(0..span));
    init.extend(snapshot_init(shard1.memory(), &(span..2 * span)));
    let expected_total = 2 * XKV_PER_SHARD * KV_INITIAL;
    let xlocks = Arc::new([XLock::new(), XLock::new()]);
    let broken_audits = Arc::new(AtomicU64::new(0));
    let break_2pc = cfg.break_2pc;

    let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for tid in 0..cfg.threads {
        let mut threads = [shard0.register(), shard1.register()];
        let stores = [store0.clone(), store1.clone()];
        let xlocks = Arc::clone(&xlocks);
        let broken = Arc::clone(&broken_audits);
        let mut rng = OpRng::new(seed, tid);
        let txns = cfg.txns_per_thread;
        bodies.push(Box::new(move || {
            let mut scratches = [stores[0].new_batch_scratch(2), stores[1].new_batch_scratch(2)];
            for _ in 0..txns {
                let dice = rng.below(10);
                if dice < 4 {
                    // Shard-local conserving transfer: backend-native
                    // execution, no coordination lock — the common case
                    // sharding keeps cheap.
                    let s = rng.below(2) as usize;
                    let base = s as u64 * XKV_PER_SHARD;
                    let from = base + rng.below(XKV_PER_SHARD);
                    let to =
                        base + (from - base + 1 + rng.below(XKV_PER_SHARD - 1)) % XKV_PER_SHARD;
                    let amount = 1 + rng.below(10);
                    stores[s].multi_add(
                        &mut *threads[s],
                        &mut scratches[s],
                        &[(from, -(amount as i64)), (to, amount as i64)],
                    );
                } else if dice < 7 {
                    // Cross-shard transfer: 2PC over one per-shard
                    // transaction each, under both XLocks (ascending
                    // order, deadlock-free).
                    let debit = rng.below(2) as usize;
                    let from = debit as u64 * XKV_PER_SHARD + rng.below(XKV_PER_SHARD);
                    let to = (1 - debit) as u64 * XKV_PER_SHARD + rng.below(XKV_PER_SHARD);
                    let amount = 1 + rng.below(10);
                    let ups =
                        group_adds(&map, &[0, 1], &[(from, -(amount as i64)), (to, amount as i64)]);
                    let _g0 = xlocks[0].lock();
                    let _g1 = xlocks[1].lock();
                    let mut undos = Vec::with_capacity(2);
                    for (pi, upd) in ups.iter().enumerate() {
                        let mut part = ShardPart {
                            store: &stores[pi],
                            thread: &mut *threads[pi],
                            scratch: &mut scratches[pi],
                        };
                        undos.push(prepare_part(&mut part, upd));
                    }
                    debug_assert_eq!(undos.len(), 2);
                    // The prepare → apply seam: the crash window the
                    // atomicity invariants aim at.
                    hooks::emit(Event::Poll);
                    let mut escalated = false;
                    for (pi, upd) in ups.iter().enumerate() {
                        if break_2pc && pi == 1 {
                            // Seeded bug: coordinator "crash" after the
                            // first apply — participant 1 never applies
                            // and no compensation runs, leaking a
                            // half-applied transfer.
                            break;
                        }
                        let mut part = ShardPart {
                            store: &stores[pi],
                            thread: &mut *threads[pi],
                            scratch: &mut scratches[pi],
                        };
                        let mut writes = Vec::new(); // post-image scratch (not logging)
                        if apply_part(&mut part, upd, escalated, &mut writes) {
                            escalated = true;
                        }
                    }
                } else {
                    // Global audit under both locks (no half-applied
                    // cross-shard transfer can be visible): one read-only
                    // transaction per shard; concurrent *local* transfers
                    // between the two snapshots are admissible because
                    // they conserve their shard's sum.
                    let _g0 = xlocks[0].lock();
                    let _g1 = xlocks[1].lock();
                    let mut total = 0u64;
                    let mut all_committed = true;
                    for s in 0..2usize {
                        let store = &stores[s];
                        let mut sum = 0u64;
                        let out = threads[s].exec(TxKind::ReadOnly, &mut |tx| {
                            sum = 0;
                            let base = s as u64 * XKV_PER_SHARD;
                            for k in base..base + XKV_PER_SHARD {
                                sum = sum.wrapping_add(store.get_in(tx, k)?.unwrap_or(0));
                            }
                            Ok(())
                        });
                        all_committed &= out == tm_api::Outcome::Committed;
                        total = total.wrapping_add(sum);
                    }
                    if all_committed && total != expected_total {
                        broken.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    let (s0, s1) = (store0.clone(), store1.clone());
    let (m0, m1) = (shard0.clone(), shard1.clone());
    Scenario {
        backend: shard0,
        watched,
        init,
        bodies,
        check_invariants: Box::new(move || {
            let broken = broken_audits.load(Ordering::Relaxed);
            if broken > 0 {
                return Some(format!(
                    "{broken} locked audit(s) observed a torn cross-shard total \
                     (expected {expected_total}): a cross-shard transfer was half-applied"
                ));
            }
            let mut total = 0u64;
            for k in 0..XKV_PER_SHARD {
                total = total.wrapping_add(s0.load_raw(m0.memory(), k).unwrap_or(0));
            }
            for k in XKV_PER_SHARD..2 * XKV_PER_SHARD {
                total = total.wrapping_add(s1.load_raw(m1.memory(), k).unwrap_or(0));
            }
            (total != expected_total)
                .then(|| format!("cross-shard balance not conserved: {total} != {expected_total}"))
        }),
    }
}

/// Recovery-workload shard geometry: each shard owns `RKV_ACCOUNTS`
/// conserved bank accounts plus one monotone put-counter key per
/// (possible) thread, so sync-acked-write survival is checkable per key.
const RKV_ACCOUNTS: u64 = 4;
const RKV_COUNTERS: u64 = 8; // one per thread at the CLI's 16-thread cap
const RKV_PER_SHARD: u64 = RKV_ACCOUNTS + RKV_COUNTERS;

/// Durability scenario: the xshard two-backend shape with a live
/// [`WalSet`] wired through the full commit-ordered logging protocol —
/// the same record sequences `txkv::Pipeline` writes, driven under the
/// cooperative scheduler so the crash lands at a *schedule-dependent*
/// point inside the protocol seams.
///
/// Each thread mixes:
/// * shard-local conserving transfers logged as post-image `Write`
///   records under the shard commit lock (append strictly after the
///   backend transaction committed — the DUMBO discipline);
/// * monotone counter puts, sync-acked only once the flush reports the
///   record durable (the acked value is what recovery must preserve);
/// * cross-shard 2PC transfers writing the durable-prepare / apply /
///   decide record protocol, with in-memory compensation + `XAbort` when
///   the power cut lands mid-transaction;
/// * locked global audits (read-only; never touch the WAL).
///
/// The seed scripts a [`CrashSpec`] — site and countdown both derived
/// from the seed — so across seeds every [`CrashSite`] is exercised, and
/// schedule exploration varies *where in the interleaving* the power
/// dies. End-of-run invariants recover from the surviving logs into
/// fresh backends and require: no torn audit, live + recovered
/// conservation, and every sync-acked write present (exactly equal when
/// no crash tripped).
fn build_recovery(cfg: &CheckConfig, seed: u64) -> Scenario {
    let span = round_up_to_line(workloads::btree::memory_words(64) as u64);
    let shard0 = make_backend(cfg, 2 * span as usize);
    let shard1 = make_backend(cfg, 2 * span as usize);
    let map = ShardMap::range(2, RKV_PER_SHARD);
    let store0 =
        KvStore::create_with(shard0.memory(), 0, span, (0..RKV_ACCOUNTS).map(|k| (k, KV_INITIAL)));
    let store1 = KvStore::create_with(
        shard1.memory(),
        span,
        span,
        (RKV_PER_SHARD..RKV_PER_SHARD + RKV_ACCOUNTS).map(|k| (k, KV_INITIAL)),
    );
    let watched = 0..2 * span;
    let mut init = snapshot_init(shard0.memory(), &(0..span));
    init.extend(snapshot_init(shard1.memory(), &(span..2 * span)));
    let expected_total = 2 * RKV_ACCOUNTS * KV_INITIAL;
    let xlocks = Arc::new([XLock::new(), XLock::new()]);
    let broken_audits = Arc::new(AtomicU64::new(0));
    // Highest sync-acked value per counter key (what recovery owes us).
    let acked = Arc::new(Mutex::new(HashMap::<u64, u64>::new()));

    // Fresh WAL directory per scenario build: the checker re-builds the
    // scenario for every explored/replayed schedule.
    let dir = {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tm-check-recovery-{}-{n}", std::process::id()))
    };
    let total_ops = (cfg.threads * cfg.txns_per_thread) as u64;
    // Seed-scripted power cut: site and countdown both vary with the
    // seed, so a sweep covers every crash site (and some seeds never
    // trip it at all — the graceful case).
    let crash = CrashSpec {
        site: CrashSite::ALL[(seed % CrashSite::ALL.len() as u64) as usize],
        after: (seed / CrashSite::ALL.len() as u64) % (total_ops / 2).max(1),
    };
    let dcfg = DurabilityConfig {
        group_commit_max: 1,
        crash: Some(crash),
        ..DurabilityConfig::new(DurabilityMode::Sync, dir.clone())
    };
    let wal = WalSet::open(&dcfg, 2).expect("recovery scenario WAL open");
    // Make the seeded balances durable up front (as a base checkpoint,
    // the shape a restarted service inherits): a crash before the first
    // append must still recover the initial state.
    for s in 0..2u64 {
        let entries: Vec<(u64, u64)> =
            (0..RKV_ACCOUNTS).map(|k| (s * RKV_PER_SHARD + k, KV_INITIAL)).collect();
        wal.install_checkpoint(s as usize, &entries).expect("seed checkpoint");
    }

    let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for tid in 0..cfg.threads {
        let mut threads = [shard0.register(), shard1.register()];
        let stores = [store0.clone(), store1.clone()];
        let xlocks = Arc::clone(&xlocks);
        let broken = Arc::clone(&broken_audits);
        let acked = Arc::clone(&acked);
        let wal = Arc::clone(&wal);
        let mut rng = OpRng::new(seed, tid);
        let txns = cfg.txns_per_thread;
        bodies.push(Box::new(move || {
            let mut scratches = [stores[0].new_batch_scratch(2), stores[1].new_batch_scratch(2)];
            let mut writes: Vec<(u64, Option<u64>)> = Vec::new();
            let mut ctr = 0u64;
            for _ in 0..txns {
                if !wal.alive() {
                    break; // simulated power cut: the machine is gone
                }
                let dice = rng.below(10);
                if dice < 3 {
                    // Shard-local conserving transfer, logged as one
                    // post-image record. Commit lock spans exec + append
                    // so per-shard log order is commit order.
                    let s = rng.below(2) as usize;
                    let base = s as u64 * RKV_PER_SHARD;
                    let from = base + rng.below(RKV_ACCOUNTS);
                    let to = base + (from - base + 1 + rng.below(RKV_ACCOUNTS - 1)) % RKV_ACCOUNTS;
                    let amount = 1 + rng.below(10);
                    let cl = wal.commit_lock(s);
                    writes.clear();
                    stores[s].multi_add_logged(
                        &mut *threads[s],
                        &mut scratches[s],
                        &[(from, -(amount as i64)), (to, amount as i64)],
                        &mut writes,
                    );
                    wal.crash_point(CrashSite::AfterCommit);
                    let lsn = wal.append(s, Append::Write(&writes));
                    drop(cl);
                    if lsn.is_ok() {
                        let _ = wal.flush(s);
                    }
                } else if dice < 5 {
                    // Monotone counter put on this thread's own key:
                    // acked (recorded as owed) only once durable.
                    let c = tid % 2;
                    let key = c as u64 * RKV_PER_SHARD + RKV_ACCOUNTS + (tid as u64 / 2);
                    ctr += 1;
                    let cl = wal.commit_lock(c);
                    stores[c].put(&mut *threads[c], &mut scratches[c], key, ctr);
                    writes.clear();
                    writes.push((key, Some(ctr)));
                    wal.crash_point(CrashSite::AfterCommit);
                    let lsn = wal.append(c, Append::Write(&writes));
                    drop(cl);
                    if let Ok(lsn) = lsn {
                        if matches!(wal.flush(c), Ok(d) if d >= lsn) {
                            acked.lock().unwrap().insert(key, ctr);
                        }
                    }
                } else if dice < 8 {
                    // Cross-shard 2PC transfer with the full durable
                    // record protocol (the pipeline's sequence).
                    let debit = rng.below(2) as usize;
                    let from = debit as u64 * RKV_PER_SHARD + rng.below(RKV_ACCOUNTS);
                    let to = (1 - debit) as u64 * RKV_PER_SHARD + rng.below(RKV_ACCOUNTS);
                    let amount = 1 + rng.below(10);
                    let ups =
                        group_adds(&map, &[0, 1], &[(from, -(amount as i64)), (to, amount as i64)]);
                    let _g0 = xlocks[0].lock();
                    let _g1 = xlocks[1].lock();
                    let mut undos = Vec::with_capacity(2);
                    for (pi, upd) in ups.iter().enumerate() {
                        let mut part = ShardPart {
                            store: &stores[pi],
                            thread: &mut *threads[pi],
                            scratch: &mut scratches[pi],
                        };
                        undos.push(prepare_part(&mut part, upd));
                    }
                    let xid = wal.next_xid();
                    // Durable prepare: every participant's XBegin on disk
                    // before any apply (recovery can always compensate).
                    let mut dead = false;
                    for pi in 0..2 {
                        let cl = wal.commit_lock(pi);
                        let r = wal.append(
                            pi,
                            Append::XBegin { xid, parts: &[0, 1], upd: &ups[pi], undo: &undos[pi] },
                        );
                        drop(cl);
                        if r.is_err() || wal.flush(pi).is_err() {
                            dead = true;
                            break;
                        }
                    }
                    if dead {
                        continue; // nothing applied: presumed abort is free
                    }
                    wal.crash_point(CrashSite::AfterPrepare);
                    // The prepare → apply seam: the crash window the
                    // recovery resolution aims at.
                    hooks::emit(Event::Poll);
                    let mut applied = 0usize;
                    let mut escalated = false;
                    for (pi, upd) in ups.iter().enumerate() {
                        let cl = wal.commit_lock(pi);
                        let mut part = ShardPart {
                            store: &stores[pi],
                            thread: &mut *threads[pi],
                            scratch: &mut scratches[pi],
                        };
                        writes.clear();
                        if apply_part(&mut part, upd, escalated, &mut writes) {
                            escalated = true;
                        }
                        applied = pi + 1;
                        let r = wal.append(pi, Append::XApply { xid, writes: &writes });
                        drop(cl);
                        if r.is_err() || wal.flush(pi).is_err() {
                            dead = true;
                            break;
                        }
                        wal.crash_point(CrashSite::AfterApply);
                    }
                    let mut decided = false;
                    if !dead {
                        for pi in 0..2 {
                            let cl = wal.commit_lock(pi);
                            let r = wal.append(pi, Append::XDecide { xid });
                            drop(cl);
                            let durable = r.is_ok() && wal.flush(pi).is_ok();
                            if durable {
                                decided = true; // first durable decision commits
                            } else if decided {
                                break; // already committed; rest is best-effort
                            } else {
                                dead = true;
                                break;
                            }
                        }
                        if decided {
                            wal.crash_point(CrashSite::AfterDecision);
                        }
                    }
                    if dead && !decided {
                        // Presumed abort: compensate the applied parts in
                        // memory (the locked audits must never see a
                        // half-applied transfer) and log the rollback as
                        // one atomic XAbort record, mirroring recovery.
                        for pi in 0..applied {
                            let cl = wal.commit_lock(pi);
                            let mut part = ShardPart {
                                store: &stores[pi],
                                thread: &mut *threads[pi],
                                scratch: &mut scratches[pi],
                            };
                            writes.clear();
                            undo_part(&mut part, &ups[pi], &undos[pi], &mut writes);
                            let _ = wal.append(pi, Append::XAbort { xid, writes: &writes });
                            drop(cl);
                            let _ = wal.flush(pi);
                        }
                    }
                } else {
                    // Global audit under both locks: the read-only lane,
                    // which never touches the WAL (DUMBO discipline).
                    let _g0 = xlocks[0].lock();
                    let _g1 = xlocks[1].lock();
                    let mut total = 0u64;
                    let mut all_committed = true;
                    for s in 0..2usize {
                        let store = &stores[s];
                        let mut sum = 0u64;
                        let out = threads[s].exec(TxKind::ReadOnly, &mut |tx| {
                            sum = 0;
                            let base = s as u64 * RKV_PER_SHARD;
                            for k in base..base + RKV_ACCOUNTS {
                                sum = sum.wrapping_add(store.get_in(tx, k)?.unwrap_or(0));
                            }
                            Ok(())
                        });
                        all_committed &= out == tm_api::Outcome::Committed;
                        total = total.wrapping_add(sum);
                    }
                    if all_committed && total != expected_total {
                        broken.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    let (s0, s1) = (store0.clone(), store1.clone());
    let (m0, m1) = (shard0.clone(), shard1.clone());
    Scenario {
        backend: shard0,
        watched,
        init,
        bodies,
        check_invariants: Box::new(move || {
            let broken = broken_audits.load(Ordering::Relaxed);
            if broken > 0 {
                return Some(format!(
                    "{broken} locked audit(s) observed a torn cross-shard total \
                     (expected {expected_total})"
                ));
            }
            // Live memory must conserve whether or not the power cut
            // tripped: every update path compensates before giving up.
            let mut live = 0u64;
            for k in 0..RKV_ACCOUNTS {
                live = live.wrapping_add(s0.load_raw(m0.memory(), k).unwrap_or(0));
            }
            for k in RKV_PER_SHARD..RKV_PER_SHARD + RKV_ACCOUNTS {
                live = live.wrapping_add(s1.load_raw(m1.memory(), k).unwrap_or(0));
            }
            if live != expected_total {
                return Some(format!("live balances not conserved: {live} != {expected_total}"));
            }
            // Recover the durable state into fresh verification backends
            // (any backend will do: replay is pure data) and hold it to
            // the durability contract.
            let graceful = wal.alive();
            let domains = match recover(&dir, &map, |_| Silo::new(span as usize), 0, span) {
                Ok((domains, _report)) => domains,
                Err(e) => return Some(format!("recovery failed: {e}")),
            };
            let mut total = 0u64;
            for (s, (b, st)) in domains.iter().enumerate() {
                let base = s as u64 * RKV_PER_SHARD;
                for k in base..base + RKV_ACCOUNTS {
                    total = total.wrapping_add(st.load_raw(b.memory(), k).unwrap_or(0));
                }
            }
            if total != expected_total {
                return Some(format!(
                    "recovered balance not conserved: {total} != {expected_total} \
                     (crash site {:?})",
                    crash.site
                ));
            }
            for (&key, &n) in acked.lock().unwrap().iter() {
                let (b, st) = &domains[map.shard_of(key)];
                let got = st.load_raw(b.memory(), key).unwrap_or(0);
                if got < n || (graceful && got != n) {
                    return Some(format!(
                        "sync-acked write lost: key {key} recovered {got}, acked {n} \
                         (crash site {:?}, graceful: {graceful})",
                        crash.site
                    ));
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
            None
        }),
    }
}

// ---- typed-index workload ---------------------------------------------

/// Rows in the typed-index workload (fixed id set, never deleted).
const TI_ROWS: u64 = 6;
/// Groups a row can belong to (the indexed column's value space).
const TI_GROUPS: u64 = 4;
/// All rows live at one place; the scenario is single-shard.
const TI_PLACE: u64 = 1;

def_key! {
    /// Typed-index workload secondary key: (group, row id) — the row id
    /// folds into the tuple tail so a group's members scan in id order.
    pub struct GroupKey { g: 10, id: 14 }
}
def_row! {
    /// Typed-index workload row: `group` is the indexed column, `moves`
    /// counts committed group changes (lost-update check).
    pub struct GroupedRow { group, moves }
}

const TI_ROWS_TABLE: Table<u64, GroupedRow> = Table::new(0, "rows");
const TI_BY_GROUP: Index<GroupKey> = Index::new(1, "rows_by_group", false);
const TI_GROUP_COL: u64 = 0;
const TI_MOVES_COL: u64 = 1;

/// Typed table + secondary index over one [`KvStore`], driven through
/// [`txkv_schema`]'s schema layer via [`LocalTx`]: update transactions
/// move a row to a different group — rewriting the indexed column and
/// relocating its [`TI_BY_GROUP`] entry in the **same** transaction —
/// while read-only transactions pick a group and check, inside one
/// snapshot, that the index's members and the base rows agree in both
/// directions. With `cfg.break_index` the update skips the index move
/// (the seeded bug), which the snapshot checks and the end-of-run
/// reachability/dangling-entry sweep must catch.
fn build_typed_index(cfg: &CheckConfig, seed: u64) -> Scenario {
    let total_txns = (cfg.threads * cfg.txns_per_thread) as u64;
    let mem_words = workloads::btree::memory_words(3 * TI_ROWS + 2 * total_txns + 64);
    let backend = make_backend(cfg, mem_words);
    // Seed rows + their index entries, sorted into key order for the
    // bulk build (rows interleave two table-id prefixes).
    let mut seed_pairs: Vec<(u64, u64)> = Vec::new();
    for id in 0..TI_ROWS {
        let g = id % TI_GROUPS;
        seed_pairs.push((TI_ROWS_TABLE.key(TI_PLACE, id, TI_GROUP_COL), g));
        seed_pairs.push((TI_ROWS_TABLE.key(TI_PLACE, id, TI_MOVES_COL), 0));
        seed_pairs.push((TI_BY_GROUP.key(TI_PLACE, GroupKey { g, id }), id));
    }
    seed_pairs.sort_unstable_by_key(|&(k, _)| k);
    let store = KvStore::create_with(
        backend.memory(),
        0,
        round_up_to_line(mem_words as u64),
        seed_pairs.into_iter(),
    );
    let watched = 0..round_up_to_line(mem_words as u64);
    let init = snapshot_init(backend.memory(), &watched);
    let moves = Arc::new(AtomicU64::new(0));
    let broken_reads = Arc::new(AtomicU64::new(0));
    let break_index = cfg.break_index;

    let mut bodies: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for tid in 0..cfg.threads {
        let mut thread = backend.register();
        let store = store.clone();
        let mut rng = OpRng::new(seed, tid);
        let txns = cfg.txns_per_thread;
        let moves = Arc::clone(&moves);
        let broken = Arc::clone(&broken_reads);
        bodies.push(Box::new(move || {
            let mut scratch = store.new_batch_scratch(4);
            for _ in 0..txns {
                if rng.below(10) < 7 {
                    // Move a row to a *different* group: base column and
                    // index entry in one transaction (unless broken).
                    let id = rng.below(TI_ROWS);
                    let hop = 1 + rng.below(TI_GROUPS - 1);
                    let out = thread.exec(TxKind::Update, &mut |tx| {
                        scratch.reset();
                        let mut ltx = LocalTx { store: &store, tx, scratch: &mut scratch };
                        let old = TI_ROWS_TABLE.read_col(&mut ltx, TI_PLACE, id, TI_GROUP_COL)?;
                        let new = (old + hop) % TI_GROUPS;
                        TI_ROWS_TABLE.write_col(&mut ltx, TI_PLACE, id, TI_GROUP_COL, new)?;
                        TI_ROWS_TABLE
                            .update_col(&mut ltx, TI_PLACE, id, TI_MOVES_COL, |m| m + 1)?;
                        if !break_index {
                            TI_BY_GROUP.update(
                                &mut ltx,
                                TI_PLACE,
                                Some(GroupKey { g: old, id }),
                                Some((GroupKey { g: new, id }, id)),
                            )?;
                        }
                        Ok(())
                    });
                    if out == tm_api::Outcome::Committed {
                        moves.fetch_add(1, Ordering::Relaxed);
                        scratch.refill(store.alloc());
                    }
                } else {
                    // Snapshot check of one group: index → base (every
                    // member's row carries the group) and base → index
                    // (every row in the group is a member).
                    let g = rng.below(TI_GROUPS);
                    let mut torn = false;
                    let out = thread.exec(TxKind::ReadOnly, &mut |tx| {
                        torn = false;
                        let mut ltx = LocalTx { store: &store, tx, scratch: &mut scratch };
                        let mut members: Vec<u64> = Vec::new();
                        TI_BY_GROUP.scan(
                            &mut ltx,
                            TI_PLACE,
                            GroupKey { g, id: 0 },
                            GroupKey { g: g + 1, id: 0 },
                            u64::MAX,
                            &mut |ik, primary| {
                                if ik.id != primary {
                                    torn = true;
                                }
                                members.push(primary);
                            },
                        )?;
                        for &id in &members {
                            if TI_ROWS_TABLE.read_col(&mut ltx, TI_PLACE, id, TI_GROUP_COL)? != g {
                                torn = true;
                            }
                        }
                        for id in 0..TI_ROWS {
                            if TI_ROWS_TABLE.read_col(&mut ltx, TI_PLACE, id, TI_GROUP_COL)? == g
                                && !members.contains(&id)
                            {
                                torn = true;
                            }
                        }
                        Ok(())
                    });
                    if out == tm_api::Outcome::Committed && torn {
                        broken.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    let b2 = backend.clone();
    Scenario {
        backend,
        watched,
        init,
        bodies,
        check_invariants: Box::new(move || {
            let broken = broken_reads.load(Ordering::Relaxed);
            if broken > 0 {
                return Some(format!(
                    "{broken} committed snapshot(s) saw base rows and index entries disagree"
                ));
            }
            let mem = b2.memory();
            let mut recorded_moves = 0u64;
            for id in 0..TI_ROWS {
                let g = match store.load_raw(mem, TI_ROWS_TABLE.key(TI_PLACE, id, TI_GROUP_COL)) {
                    Some(g) => g,
                    None => return Some(format!("row {id} lost its presence column")),
                };
                recorded_moves +=
                    store.load_raw(mem, TI_ROWS_TABLE.key(TI_PLACE, id, TI_MOVES_COL)).unwrap_or(0);
                if store.load_raw(mem, TI_BY_GROUP.key(TI_PLACE, GroupKey { g, id })) != Some(id) {
                    return Some(format!(
                        "committed row {id} (group {g}) is unreachable through the index"
                    ));
                }
            }
            for g in 0..TI_GROUPS {
                for id in 0..TI_ROWS {
                    let Some(primary) =
                        store.load_raw(mem, TI_BY_GROUP.key(TI_PLACE, GroupKey { g, id }))
                    else {
                        continue;
                    };
                    let row_g =
                        store.load_raw(mem, TI_ROWS_TABLE.key(TI_PLACE, primary, TI_GROUP_COL));
                    if primary != id || row_g != Some(g) {
                        return Some(format!(
                            "dangling index entry ({g}, {id}) -> row {primary} in group {row_g:?}"
                        ));
                    }
                }
            }
            let done = moves.load(Ordering::Relaxed);
            (recorded_moves != done).then(|| {
                format!("lost group moves: {done} committed but rows record {recorded_moves}")
            })
        }),
    }
}
