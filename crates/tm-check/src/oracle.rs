//! History oracles: snapshot isolation (SI-HTM) and strict
//! serializability (plain HTM, P8TM, Silo).
//!
//! Both operate on the committed-transaction history in **commit order**
//! (the order the serialized log produced). Because the scheduler applies
//! a transaction's writes atomically between yield points, commit order is
//! exactly the order writes reached memory.
//!
//! ## The SI check
//!
//! For each committed transaction `T` (commit position `t`, 0-based), a
//! *snapshot* `s` means "the memory state after the first `s` commits".
//! `T` satisfies SI iff some `s` exists with:
//!
//! * **freshness**: `s ≥` the number of commits that completed before `T`
//!   began (real time: a snapshot cannot predate the begin), and `s`
//!   includes every earlier committer whose write set overlaps `T`'s
//!   (first-committer-wins: two concurrent transactions must not both
//!   write the same item, so an overlapping earlier committer cannot have
//!   been concurrent with `T`);
//! * **consistency**: every external read of `T` returns exactly the value
//!   of its address at snapshot `s`.
//!
//! Write skew is *permitted* by construction: reads outside the write set
//! only constrain the snapshot choice, never the relative order of two
//! committed writers with disjoint write sets — precisely SI's anomaly.
//! Word granularity makes the ww-overlap test *weaker* than SI-HTM's
//! cache-line granularity, so a backend that is correct per the paper can
//! never be flagged (no false positives), while a torn snapshot is flagged
//! regardless of granularity.
//!
//! ## The strict-serializability check
//!
//! Replay the committed transactions in commit order against a model
//! memory, checking every external read. For the backends under test the
//! commit order *is* the serialization order (conflicting transactions
//! kill each other; validation rejects stale reads), so a mismatch is a
//! violation — but to keep the oracle sound against merely-unusual orders
//! it falls back to a bounded search over all real-time-respecting
//! permutations before declaring failure.

use crate::history::{Txn, TxnKind};
use std::collections::HashMap;
use txmem::Addr;

/// A confirmed oracle violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index into the commit-ordered history.
    pub txn_index: usize,
    pub message: String,
}

fn describe(t: &Txn, idx: usize) -> String {
    let kind = match t.kind {
        TxnKind::Update => "update",
        TxnKind::ReadOnly => "read-only",
        TxnKind::Sgl => "SGL",
    };
    format!("txn #{idx} ({kind}, thread {}, log [{}..{}])", t.tid, t.begin_idx, t.commit_idx)
}

/// Check a commit-ordered history against snapshot isolation.
///
/// `init` maps every watched address to its pre-run value (missing
/// addresses are zero, matching `TxMemory`'s zero-initialisation).
pub fn check_si(txns: &[Txn], init: &HashMap<Addr, u64>) -> Result<(), Violation> {
    let n = txns.len();
    // Per-address commit timeline: (commit position + 1, value) ascending.
    let mut timeline: HashMap<Addr, Vec<(usize, u64)>> = HashMap::new();
    // Filled incrementally: when checking txn t, `timeline` holds commits
    // 0..t — exactly the snapshots txn t may choose from.
    for t in 0..n {
        let txn = &txns[t];
        // Freshness lower bound.
        let mut lo = txns.iter().take(t).filter(|u| u.commit_idx < txn.begin_idx).count();
        let writes = txn.write_set();
        if !writes.is_empty() {
            for (u_idx, u) in txns.iter().enumerate().take(t) {
                if u.write_set().iter().any(|(a, _)| writes.iter().any(|(b, _)| a == b)) {
                    // First-committer-wins: u and txn both wrote an item,
                    // so txn's snapshot must include u.
                    lo = lo.max(u_idx + 1);
                }
            }
        }
        // Feasible snapshots s in [lo, t].
        let mut feasible: Vec<bool> = (0..=t).map(|s| s >= lo).collect();
        if !feasible.iter().any(|b| *b) {
            return Err(Violation {
                txn_index: t,
                message: format!(
                    "{}: no admissible snapshot (freshness bound {} exceeds commit position {})",
                    describe(txn, t),
                    lo,
                    t
                ),
            });
        }
        for (addr, val) in txn.external_reads() {
            let tl = timeline.get(&addr);
            let value_at = |s: usize| -> u64 {
                match tl {
                    Some(tl) => match tl.iter().rev().find(|(seq, _)| *seq <= s) {
                        Some(&(_, v)) => v,
                        None => init.get(&addr).copied().unwrap_or(0),
                    },
                    None => init.get(&addr).copied().unwrap_or(0),
                }
            };
            for (s, ok) in feasible.iter_mut().enumerate() {
                if *ok && value_at(s) != val {
                    *ok = false;
                }
            }
            if !feasible.iter().any(|b| *b) {
                return Err(Violation {
                    txn_index: t,
                    message: format!(
                        "{}: SI violation — read of addr {addr} observed {val}, which is \
                         consistent with no single snapshot also explaining its earlier reads \
                         (torn/non-atomic snapshot)",
                        describe(txn, t)
                    ),
                });
            }
        }
        for (addr, val) in writes {
            timeline.entry(addr).or_default().push((t + 1, val));
        }
    }
    Ok(())
}

/// Check a commit-ordered history against strict serializability.
pub fn check_serializable(txns: &[Txn], init: &HashMap<Addr, u64>) -> Result<(), Violation> {
    // Fast path: the commit order itself serializes.
    let mut model: HashMap<Addr, u64> = init.clone();
    let mut first_bad = None;
    for (t, txn) in txns.iter().enumerate() {
        if let Some(msg) = replay_mismatch(txn, &model) {
            first_bad = Some((t, msg));
            break;
        }
        for (addr, val) in txn.write_set() {
            model.insert(addr, val);
        }
    }
    let Some((bad_idx, bad_msg)) = first_bad else { return Ok(()) };
    // Slow path: search for *some* serial order consistent with real time.
    // Bounded; exhausting the budget without a witness counts as a
    // violation (the commit-order mismatch stands as the evidence).
    let mut budget: u64 = 200_000;
    if serial_witness_exists(txns, init, &mut budget) {
        return Ok(());
    }
    Err(Violation {
        txn_index: bad_idx,
        message: format!(
            "{}: serializability violation — {} (and no real-time-respecting serial order \
             explains the history)",
            describe(&txns[bad_idx], bad_idx),
            bad_msg
        ),
    })
}

/// Does replaying `txn` against `model` contradict any external read?
fn replay_mismatch(txn: &Txn, model: &HashMap<Addr, u64>) -> Option<String> {
    for (addr, val) in txn.external_reads() {
        let expect = model.get(&addr).copied().unwrap_or(0);
        if val != expect {
            return Some(format!("read of addr {addr} observed {val}, expected {expect}"));
        }
    }
    None
}

fn serial_witness_exists(txns: &[Txn], init: &HashMap<Addr, u64>, budget: &mut u64) -> bool {
    // Real-time edges: u must precede t when u committed before t began.
    let n = txns.len();
    let mut placed = vec![false; n];
    let mut model: HashMap<Addr, u64> = init.clone();
    dfs(txns, &mut placed, 0, &mut model, budget)
}

fn dfs(
    txns: &[Txn],
    placed: &mut [bool],
    done: usize,
    model: &mut HashMap<Addr, u64>,
    budget: &mut u64,
) -> bool {
    if done == txns.len() {
        return true;
    }
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    for t in 0..txns.len() {
        if placed[t] {
            continue;
        }
        // All real-time predecessors of t must already be placed.
        let rt_ok =
            (0..txns.len()).all(|u| u == t || placed[u] || txns[u].commit_idx >= txns[t].begin_idx);
        if !rt_ok {
            continue;
        }
        if replay_mismatch(&txns[t], model).is_some() {
            continue;
        }
        let saved: Vec<(Addr, Option<u64>)> =
            txns[t].write_set().iter().map(|&(a, _)| (a, model.get(&a).copied())).collect();
        for (addr, val) in txns[t].write_set() {
            model.insert(addr, val);
        }
        placed[t] = true;
        if dfs(txns, placed, done + 1, model, budget) {
            return true;
        }
        placed[t] = false;
        for (a, old) in saved {
            match old {
                Some(v) => model.insert(a, v),
                None => model.remove(&a),
            };
        }
    }
    false
}
