//! # tm-check — deterministic schedule exploration for the TM stack
//!
//! The simulated POWER8 HTM and every backend built on it
//! (`htm-sgl`, `si-htm`, `p8tm`, `silo`) emit an event at each simulated
//! memory access and state transition through the `txmem::hooks` seam
//! (compiled in under the `check` feature). tm-check installs a
//! cooperative scheduler at that seam so that **exactly one** thread runs
//! between yield points; the resulting event log is a serialization of the
//! run, reconstructible into per-transaction histories and checkable
//! against the backend's declared consistency model:
//!
//! * **snapshot isolation** for SI-HTM (write skew explicitly permitted);
//! * **strict serializability** for HTM+SGL, P8TM and Silo;
//! * **workload invariants** (counter sums, bank conservation, B+-tree
//!   well-formedness) as an end-of-run backstop.
//!
//! Runs are seeded and fully reproducible; failures are shrunk to a
//! minimal choice trace and rendered as a per-thread interleaving.

pub mod history;
pub mod oracle;
pub mod scenario;
pub mod sched;
pub mod shrink;

pub use scenario::{BackendKind, CheckConfig, WorkloadKind};
pub use sched::{Choice, FaultPlan};

use sched::{RunResult, Scheduler};

/// Everything observed in one execution of a scenario.
pub struct RunOutput {
    pub run: RunResult,
    pub txns: Vec<history::Txn>,
    /// First failure detected (panic, oracle violation, or invariant).
    pub failure: Option<String>,
}

/// Execute `cfg` once under seed `seed`, replaying `replay` (empty for a
/// fresh exploration run), and judge the outcome.
pub fn execute(cfg: &CheckConfig, seed: u64, replay: Vec<Choice>) -> RunOutput {
    let sc = scenario::build(cfg, seed);
    let scheduler = Scheduler::new(cfg.threads, seed, cfg.max_steps, cfg.faults, replay);
    let run = scheduler.run(sc.bodies);
    let txns = history::build_history(&run.log, &sc.watched, cfg.threads);
    let mut failure = run.panic.as_ref().map(|p| format!("worker panic: {p}"));
    if failure.is_none() && !run.overflowed {
        // An overflowed run's log has a free-running (unserialized) tail,
        // so the oracles would report nonsense; invariants still apply.
        let res = if cfg.backend.is_si() {
            oracle::check_si(&txns, &sc.init)
        } else {
            oracle::check_serializable(&txns, &sc.init)
        };
        if let Err(v) = res {
            failure = Some(v.message);
        }
    }
    if failure.is_none() {
        failure = (sc.check_invariants)();
    }
    RunOutput { run, txns, failure }
}

/// Summary of one passing seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeedReport {
    pub committed_txns: usize,
    pub steps: u64,
    pub overflowed: bool,
}

/// A failing seed, with the shrunk reproduction.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    pub seed: u64,
    pub message: String,
    /// Human-readable minimal interleaving + context.
    pub pretty: String,
    pub original_trace_len: usize,
    pub shrunk_trace_len: usize,
    pub shrunk_switches: usize,
}

const SHRINK_ATTEMPTS: usize = 300;

/// Explore one seed; on failure, shrink and render the reproduction.
pub fn check_seed(cfg: &CheckConfig, seed: u64) -> Result<SeedReport, CheckFailure> {
    let out = execute(cfg, seed, Vec::new());
    let Some(message) = out.failure else {
        return Ok(SeedReport {
            committed_txns: out.txns.len(),
            steps: out.run.steps,
            overflowed: out.run.overflowed,
        });
    };
    let original = out.run.trace;
    let shrunk = shrink::shrink(
        original.clone(),
        |cand| execute(cfg, seed, cand.to_vec()).failure.is_some(),
        SHRINK_ATTEMPTS,
    );
    let final_out = execute(cfg, seed, shrunk.clone());
    // Shrinking preserves *some* failure; the message may differ from the
    // original (e.g. an invariant reduces to an oracle violation).
    let message = final_out.failure.unwrap_or(message);
    let switches = shrink::switch_count(&final_out.run.trace);
    let mut pretty = String::new();
    pretty.push_str(&format!(
        "tm-check failure\n  backend:  {}\n  workload: {}\n  threads:  {}\n  seed:     {}\n  \
         verdict:  {}\n  trace:    {} choices ({} after shrinking, {} switches)\n\n",
        cfg.backend.name(),
        cfg.workload.name(),
        cfg.threads,
        seed,
        message,
        original.len(),
        shrunk.len(),
        switches
    ));
    pretty.push_str("minimal interleaving (serialized event log of the shrunk schedule):\n");
    pretty.push_str(&shrink::render_log(&final_out.run.log, cfg.threads));
    Err(CheckFailure {
        seed,
        message,
        pretty,
        original_trace_len: original.len(),
        shrunk_trace_len: shrunk.len(),
        shrunk_switches: switches,
    })
}

/// Aggregate of a multi-seed sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepReport {
    pub seeds: u64,
    pub committed_txns: u64,
    pub steps: u64,
    pub overflowed: u64,
}

/// Check a contiguous seed range, stopping at the first failure.
pub fn check_seeds(
    cfg: &CheckConfig,
    seeds: std::ops::Range<u64>,
) -> Result<SweepReport, Box<CheckFailure>> {
    let mut agg = SweepReport::default();
    for seed in seeds {
        match check_seed(cfg, seed) {
            Ok(r) => {
                agg.seeds += 1;
                agg.committed_txns += r.committed_txns as u64;
                agg.steps += r.steps;
                agg.overflowed += r.overflowed as u64;
            }
            Err(f) => return Err(Box::new(f)),
        }
    }
    Ok(agg)
}
