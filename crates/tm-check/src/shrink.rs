//! Greedy trace shrinking + pretty-printing of the minimal interleaving.
//!
//! A failing run is identified by its [`Choice`] trace. Shrinking applies
//! three passes under a fixed attempt budget, re-executing the scenario
//! with the candidate trace replayed and keeping any candidate that still
//! fails (the deterministic replay tail makes truncation well-defined):
//!
//! 1. **truncation** — drop the tail (binary first, then fine-grained);
//! 2. **injection neutralisation** — turn forced aborts into no-ops;
//! 3. **switch smoothing** — replace a context switch with "stay on the
//!    previous thread", eliminating preemptions that don't matter.
//!
//! The result is not globally minimal (that would need delta debugging
//! over an exponential space) but in practice reduces a few-hundred-step
//! random schedule to a handful of meaningful preemptions.

use crate::sched::Choice;
use txmem::hooks::Event;

/// Shrink `best` while `fails` keeps returning `true`, spending at most
/// `max_attempts` re-executions.
pub fn shrink<F>(mut best: Vec<Choice>, mut fails: F, max_attempts: usize) -> Vec<Choice>
where
    F: FnMut(&[Choice]) -> bool,
{
    let mut attempts = 0usize;
    // Pass 1a: binary truncation from the end.
    while best.len() > 1 && attempts < max_attempts {
        let cand = best[..best.len() / 2].to_vec();
        attempts += 1;
        if fails(&cand) {
            best = cand;
        } else {
            break;
        }
    }
    // Pass 1b: fine truncation (shave ~12% of the tail at a time).
    while !best.is_empty() && attempts < max_attempts {
        let newlen = best.len() - (best.len() / 8).max(1);
        let cand = best[..newlen].to_vec();
        attempts += 1;
        if fails(&cand) {
            best = cand;
        } else {
            break;
        }
    }
    // Pass 2: neutralise injected faults.
    for i in 0..best.len() {
        if attempts >= max_attempts {
            break;
        }
        if matches!(best[i], Choice::Inject(Some(_))) {
            let mut cand = best.clone();
            cand[i] = Choice::Inject(None);
            attempts += 1;
            if fails(&cand) {
                best = cand;
            }
        }
    }
    // Pass 3: smooth context switches.
    let mut i = 1;
    while i < best.len() && attempts < max_attempts {
        let prev_run =
            best[..i]
                .iter()
                .rev()
                .find_map(|c| if let Choice::Run(t) = c { Some(*t) } else { None });
        if let (Some(p), Choice::Run(t)) = (prev_run, best[i]) {
            if p != t {
                let mut cand = best.clone();
                cand[i] = Choice::Run(p);
                attempts += 1;
                if fails(&cand) {
                    best = cand;
                    continue; // re-examine index i with its new predecessor
                }
            }
        }
        i += 1;
    }
    best
}

/// Number of thread hand-overs in a trace (the interesting part of a
/// schedule — lower is simpler).
pub fn switch_count(trace: &[Choice]) -> usize {
    let mut prev: Option<u32> = None;
    let mut switches = 0;
    for c in trace {
        if let Choice::Run(t) = c {
            if prev.is_some_and(|p| p != *t) {
                switches += 1;
            }
            prev = Some(*t);
        }
    }
    switches
}

fn fmt_event(ev: &Event) -> String {
    match ev {
        Event::Begin { rot } => {
            if *rot {
                "begin (ROT)".to_string()
            } else {
                "begin".to_string()
            }
        }
        Event::Commit => "commit".to_string(),
        Event::Abort { reason } => format!("abort ({reason:?})"),
        Event::Read { addr, val, tx } => {
            format!("read  [{addr}] -> {val}{}", if *tx { "" } else { "  (non-tx)" })
        }
        Event::Write { addr, val, tx } => {
            format!("write [{addr}] <- {val}{}", if *tx { "" } else { "  (non-tx)" })
        }
        Event::Suspend => "suspend".to_string(),
        Event::Resume => "resume".to_string(),
        Event::Poll => "poll".to_string(),
        Event::RoBegin => "ro-begin".to_string(),
        Event::RoCommit => "ro-commit".to_string(),
        Event::SglLock => "sgl-lock".to_string(),
        Event::SglUnlock { committed } => {
            format!("sgl-unlock ({})", if *committed { "committed" } else { "aborted" })
        }
    }
}

/// Render the serialized log as a one-column-per-thread interleaving.
pub fn render_log(log: &[(usize, Event)], n_threads: usize) -> String {
    const COL: usize = 26;
    let mut out = String::new();
    let mut header = String::from("  step  ");
    for t in 0..n_threads {
        header.push_str(&format!("{:<COL$}", format!("thread {t}")));
    }
    out.push_str(header.trim_end());
    out.push('\n');
    for (i, (tid, ev)) in log.iter().enumerate() {
        let mut line = format!("  {i:>4}  ");
        line.push_str(&" ".repeat(COL * tid));
        line.push_str(&fmt_event(ev));
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}
