//! The cooperative virtual scheduler: N backend threads run on real OS
//! threads, but a shared baton ensures **exactly one** is between yield
//! points at any moment. Yield points are the `txmem::hooks` emit sites —
//! every simulated memory access and every backend state transition — so
//! the global event log is a *serialization* of the run, and the scheduling
//! decision sequence (the [`Choice`] trace) replays it exactly.
//!
//! Determinism argument: everything a thread does between two of its own
//! yield points is invisible to the others (no other thread executes
//! concurrently), so a run is fully determined by the initial memory image
//! and the choice trace. The trace is either replayed (shrinking,
//! reproduction) or generated from a seeded LCG (exploration).
//!
//! When the step budget overflows, the scheduler releases all threads to
//! free-running native execution so the workload can finish; such a run is
//! flagged [`RunResult::overflowed`] and treated as inconclusive.

use std::panic::AssertUnwindSafe;
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex};
use txmem::hooks::{self, AbortCode, CheckHooks, Event, InjectPoint};

/// One scheduling decision. A run's trace is the positional sequence of
/// these; replaying the same sequence reproduces the same run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Which thread holds the baton after a yield point.
    Run(u32),
    /// The outcome drawn at a fault-injection point.
    Inject(Option<AbortCode>),
}

/// Fault-injection probabilities, in per-mille per injection point.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Forced abort at a transactional read/write (models spurious and
    /// capacity aborts the schedule alone would not produce).
    pub access_abort_per_mille: u32,
    /// Forced abort at the commit point.
    pub commit_abort_per_mille: u32,
}

impl FaultPlan {
    pub fn is_active(&self) -> bool {
        self.access_abort_per_mille > 0 || self.commit_abort_per_mille > 0
    }
}

/// Outcome of one scheduled run.
#[derive(Debug)]
pub struct RunResult {
    /// The serialized event log: `(thread, event)` in execution order.
    /// `Poll` events are yield points but are not logged.
    pub log: Vec<(usize, Event)>,
    /// The positional choice trace (replay input for reproduction).
    pub trace: Vec<Choice>,
    /// Yield points consumed.
    pub steps: u64,
    /// Step budget exceeded: the tail of the run was free-running and the
    /// log is not a faithful serialization. Treat as inconclusive.
    pub overflowed: bool,
    /// A worker panicked (message captured); the run is a failure.
    pub panic: Option<String>,
}

struct State {
    current: usize,
    runnable: Vec<bool>,
    started: bool,
    rng: u64,
    replay: Vec<Choice>,
    replay_pos: usize,
    /// After an exhausted replay, continue deterministically rather than
    /// randomly (shrinking relies on a stable continuation).
    deterministic_tail: bool,
    trace: Vec<Choice>,
    log: Vec<(usize, Event)>,
    steps: u64,
    max_steps: u64,
    free_run: bool,
    faults: FaultPlan,
    panic: Option<String>,
}

impl State {
    fn next_u64(&mut self) -> u64 {
        // PCG-style LCG; high bits are the usable ones.
        self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.rng >> 11
    }

    fn rand_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn runnable_count(&self) -> usize {
        self.runnable.iter().filter(|r| **r).count()
    }

    /// k-th runnable thread (k < runnable_count).
    fn nth_runnable(&self, k: usize) -> usize {
        self.runnable
            .iter()
            .enumerate()
            .filter(|(_, r)| **r)
            .nth(k)
            .map(|(i, _)| i)
            .expect("nth_runnable out of range")
    }

    /// Deterministic fallback used after replay mutations: keep running
    /// `me` when it can make progress, otherwise round-robin to the next
    /// runnable thread (a polling thread must hand over or it livelocks).
    fn fallback_next(&self, me: usize, polling: bool) -> usize {
        let n = self.runnable.len();
        if !polling && self.runnable[me] {
            return me;
        }
        for d in 1..=n {
            let t = (me + d) % n;
            if self.runnable[t] {
                return t;
            }
        }
        me
    }

    /// Pick who runs after a yield point of `me`, recording the choice.
    fn pick_next(&mut self, me: usize, polling: bool) -> usize {
        let replayed = if self.replay_pos < self.replay.len() {
            let c = self.replay[self.replay_pos];
            self.replay_pos += 1;
            match c {
                Choice::Run(t)
                    if (t as usize) < self.runnable.len() && self.runnable[t as usize] =>
                {
                    Some(t as usize)
                }
                // Mutated/mismatched entry: deterministic fallback.
                _ => Some(self.fallback_next(me, polling)),
            }
        } else {
            None
        };
        let next = match replayed {
            Some(t) => t,
            None if self.deterministic_tail => self.fallback_next(me, polling),
            None => {
                let n = self.runnable_count();
                if n == 0 {
                    me
                } else if !polling && self.runnable[me] && self.rand_below(4) < 3 {
                    // Bias towards longer uninterrupted runs (realistic
                    // schedules, and faster exploration of long paths).
                    me
                } else {
                    let k = self.rand_below(n as u64) as usize;
                    self.nth_runnable(k)
                }
            }
        };
        self.trace.push(Choice::Run(next as u32));
        next
    }
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

impl Shared {
    /// A yield point of thread `me`: log the event, pick a successor, and
    /// hand the baton over (blocking until it comes back).
    fn yield_point(&self, me: usize, ev: Event) {
        let mut st = self.state.lock().unwrap();
        if st.free_run {
            return;
        }
        debug_assert_eq!(st.current, me, "event from a thread that does not hold the baton");
        if ev != Event::Poll {
            st.log.push((me, ev));
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.free_run = true;
            self.cv.notify_all();
            return;
        }
        let next = st.pick_next(me, ev == Event::Poll);
        if next != me {
            st.current = next;
            self.cv.notify_all();
            while st.current != me && !st.free_run {
                st = self.cv.wait(st).unwrap();
            }
        }
    }

    /// A fault-injection point (not a yield: control stays with `me`).
    fn inject_point(&self, point: InjectPoint) -> Option<AbortCode> {
        let mut st = self.state.lock().unwrap();
        if st.free_run {
            return None;
        }
        let code = if st.replay_pos < st.replay.len() {
            let c = st.replay[st.replay_pos];
            st.replay_pos += 1;
            match c {
                Choice::Inject(code) => code,
                _ => None, // mismatched after mutation
            }
        } else if st.deterministic_tail || !st.faults.is_active() {
            None
        } else {
            let per_mille = match point {
                InjectPoint::Access => st.faults.access_abort_per_mille,
                InjectPoint::Commit => st.faults.commit_abort_per_mille,
            };
            if per_mille > 0 && st.rand_below(1000) < per_mille as u64 {
                Some(match point {
                    // Explicit is excluded: backends treat it as a
                    // non-retryable user decision.
                    InjectPoint::Access => {
                        if st.next_u64() & 1 == 0 {
                            AbortCode::Capacity
                        } else {
                            AbortCode::Conflict
                        }
                    }
                    InjectPoint::Commit => AbortCode::Conflict,
                })
            } else {
                None
            }
        };
        st.trace.push(Choice::Inject(code));
        code
    }

    /// Block a freshly spawned worker until the run starts and it is
    /// handed the baton for the first time.
    fn wait_first(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        while !(st.free_run || (st.started && st.current == me)) {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Worker `me` finished (normally or by panic): mark it not runnable
    /// and pass the baton on.
    fn finish(&self, me: usize, panic: Option<String>) {
        let mut st = self.state.lock().unwrap();
        st.runnable[me] = false;
        if let Some(msg) = panic {
            if st.panic.is_none() {
                st.panic = Some(msg);
            }
            // A panicked schedule cannot continue deterministically; let
            // the survivors drain natively.
            st.free_run = true;
            self.cv.notify_all();
            return;
        }
        if st.free_run || st.runnable_count() == 0 {
            self.cv.notify_all();
            return;
        }
        let next = st.pick_next(me, true);
        st.current = next;
        self.cv.notify_all();
    }
}

/// Per-thread hook object installed into `txmem::hooks` on each worker.
struct ThreadHooks {
    shared: Arc<Shared>,
    tid: usize,
}

impl CheckHooks for ThreadHooks {
    fn on_event(&self, ev: Event) {
        self.shared.yield_point(self.tid, ev);
    }

    fn inject(&self, point: InjectPoint) -> Option<AbortCode> {
        self.shared.inject_point(point)
    }
}

/// Configuration of one scheduled run.
pub struct Scheduler {
    shared: Arc<Shared>,
    n: usize,
}

impl Scheduler {
    pub fn new(
        n: usize,
        seed: u64,
        max_steps: u64,
        faults: FaultPlan,
        replay: Vec<Choice>,
    ) -> Self {
        assert!(n > 0, "need at least one thread");
        let deterministic_tail = !replay.is_empty();
        Scheduler {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    current: 0,
                    runnable: vec![true; n],
                    started: false,
                    // Seed 0 would be a weak LCG start; splash it.
                    rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                    replay,
                    replay_pos: 0,
                    deterministic_tail,
                    trace: Vec::new(),
                    log: Vec::new(),
                    steps: 0,
                    max_steps,
                    free_run: false,
                    faults,
                    panic: None,
                }),
                cv: Condvar::new(),
            }),
            n,
        }
    }

    /// Run `bodies[i]` as virtual thread `i` and return the serialized log
    /// and choice trace. Bodies must perform their shared accesses through
    /// the instrumented backends — uninstrumented accesses are invisible
    /// to the scheduler (and to the oracles).
    pub fn run(self, bodies: Vec<Box<dyn FnOnce() + Send>>) -> RunResult {
        assert_eq!(bodies.len(), self.n);
        let mut workers = Vec::with_capacity(self.n);
        for (tid, body) in bodies.into_iter().enumerate() {
            let shared = Arc::clone(&self.shared);
            workers.push(std::thread::spawn(move || {
                let guard =
                    hooks::install(Rc::new(ThreadHooks { shared: Arc::clone(&shared), tid }));
                shared.wait_first(tid);
                let result = std::panic::catch_unwind(AssertUnwindSafe(body));
                drop(guard);
                let panic = result.err().map(|p| {
                    p.downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "worker panicked".to_string())
                });
                shared.finish(tid, panic);
            }));
        }
        {
            // Hand the baton to the first thread: this is itself a choice.
            let mut st = self.shared.state.lock().unwrap();
            let first = st.pick_next(0, true);
            st.current = first;
            st.started = true;
            self.shared.cv.notify_all();
        }
        for w in workers {
            // Worker panics are captured; join errors cannot carry more.
            let _ = w.join();
        }
        let st = self.shared.state.lock().unwrap();
        RunResult {
            log: st.log.clone(),
            trace: st.trace.clone(),
            steps: st.steps,
            overflowed: st.free_run && st.panic.is_none(),
            panic: st.panic.clone(),
        }
    }
}
