//! Reconstructing per-transaction histories from the serialized event log.
//!
//! The log is a total order of events (the scheduler guarantees it), so a
//! per-thread state machine suffices: `Begin..Commit` brackets an update
//! transaction, `RoBegin..RoCommit` a read-only one, `SglLock..SglUnlock`
//! an exclusive fall-back "transaction". Aborted brackets are discarded —
//! the TM contract makes no promise about the values doomed transactions
//! observed, only that their writes never surface.

use std::ops::Range;
use txmem::hooks::Event;
use txmem::Addr;

/// One shared-memory access inside a transaction, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Read { addr: Addr, val: u64 },
    Write { addr: Addr, val: u64 },
}

/// How the transaction executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// Hardware (or software-unbounded) update transaction.
    Update,
    /// Read-only fast path (non-transactional instrumented reads).
    ReadOnly,
    /// Single-global-lock fall-back (exclusive window).
    Sgl,
}

/// A committed transaction reconstructed from the log.
#[derive(Debug, Clone)]
pub struct Txn {
    pub tid: usize,
    pub kind: TxnKind,
    /// Log index of the opening event (begin).
    pub begin_idx: usize,
    /// Log index of the committing event.
    pub commit_idx: usize,
    /// Watched-range accesses in program order.
    pub ops: Vec<Op>,
}

impl Txn {
    /// External reads: watched reads not shadowed by an earlier own write
    /// (shadowed reads are engine-internal and carry no ordering info).
    pub fn external_reads(&self) -> Vec<(Addr, u64)> {
        let mut written: Vec<Addr> = Vec::new();
        let mut out = Vec::new();
        for op in &self.ops {
            match *op {
                Op::Read { addr, val } => {
                    if !written.contains(&addr) {
                        out.push((addr, val));
                    }
                }
                Op::Write { addr, .. } => {
                    if !written.contains(&addr) {
                        written.push(addr);
                    }
                }
            }
        }
        out
    }

    /// Final value per written address (last write wins).
    pub fn write_set(&self) -> Vec<(Addr, u64)> {
        let mut out: Vec<(Addr, u64)> = Vec::new();
        for op in &self.ops {
            if let Op::Write { addr, val } = *op {
                match out.iter_mut().find(|(a, _)| *a == addr) {
                    Some((_, v)) => *v = val,
                    None => out.push((addr, val)),
                }
            }
        }
        out
    }
}

#[derive(Default)]
struct Open {
    kind: Option<TxnKind>,
    begin_idx: usize,
    ops: Vec<Op>,
}

/// Build the committed-transaction history from the serialized log,
/// keeping only accesses within `watched` (workload data; protocol words
/// such as the subscribed SGL lock are excluded). Returned in commit
/// order (ascending `commit_idx`).
pub fn build_history(log: &[(usize, Event)], watched: &Range<Addr>, n_threads: usize) -> Vec<Txn> {
    let mut open: Vec<Open> = (0..n_threads).map(|_| Open::default()).collect();
    let mut txns = Vec::new();
    for (idx, &(tid, ev)) in log.iter().enumerate() {
        let o = &mut open[tid];
        match ev {
            Event::Begin { .. } => {
                *o = Open { kind: Some(TxnKind::Update), begin_idx: idx, ops: Vec::new() };
            }
            Event::RoBegin => {
                *o = Open { kind: Some(TxnKind::ReadOnly), begin_idx: idx, ops: Vec::new() };
            }
            Event::SglLock => {
                *o = Open { kind: Some(TxnKind::Sgl), begin_idx: idx, ops: Vec::new() };
            }
            Event::Read { addr, val, .. } => {
                if o.kind.is_some() && watched.contains(&addr) {
                    o.ops.push(Op::Read { addr, val });
                }
            }
            Event::Write { addr, val, .. } => {
                if o.kind.is_some() && watched.contains(&addr) {
                    o.ops.push(Op::Write { addr, val });
                }
            }
            Event::Commit => {
                if o.kind == Some(TxnKind::Update) {
                    txns.push(Txn {
                        tid,
                        kind: TxnKind::Update,
                        begin_idx: o.begin_idx,
                        commit_idx: idx,
                        ops: std::mem::take(&mut o.ops),
                    });
                    o.kind = None;
                }
                // A Commit while an RO/SGL bracket is open cannot happen:
                // the brackets nest strictly per thread.
            }
            Event::RoCommit => {
                if o.kind == Some(TxnKind::ReadOnly) {
                    txns.push(Txn {
                        tid,
                        kind: TxnKind::ReadOnly,
                        begin_idx: o.begin_idx,
                        commit_idx: idx,
                        ops: std::mem::take(&mut o.ops),
                    });
                    o.kind = None;
                }
            }
            Event::SglUnlock { committed } => {
                if o.kind == Some(TxnKind::Sgl) {
                    if committed {
                        txns.push(Txn {
                            tid,
                            kind: TxnKind::Sgl,
                            begin_idx: o.begin_idx,
                            commit_idx: idx,
                            ops: std::mem::take(&mut o.ops),
                        });
                    }
                    o.kind = None;
                    o.ops.clear();
                }
            }
            Event::Abort { .. } => {
                // Doomed attempt (hardware, validation, or user): discard.
                o.kind = None;
                o.ops.clear();
            }
            Event::Suspend | Event::Resume | Event::Poll => {}
        }
    }
    txns
}
