//! tm-check CLI: bounded schedule-exploration sweeps for CI and soak runs.
//!
//! ```text
//! tm-check [--backend htm|si-htm|p8tm|silo|all]
//!          [--workload counter|bank|btree|txkv|xshard|recovery|typed-index|all]
//!          [--threads N] [--txns N] [--seeds N] [--seed-start N] [--max-steps N]
//!          [--fault-access PER_MILLE] [--fault-commit PER_MILLE]
//!          [--break-si] [--break-2pc] [--break-index] [--expect-violation] [--out FILE]
//! ```
//!
//! Exit codes: 0 = clean (or, with `--expect-violation`, a violation was
//! found as demanded), 1 = unexpected result, 2 = usage error.

use std::process::ExitCode;
use tm_check::{BackendKind, CheckConfig, FaultPlan, WorkloadKind};

struct Args {
    backends: Vec<BackendKind>,
    workloads: Vec<WorkloadKind>,
    threads: usize,
    txns: usize,
    seeds: u64,
    seed_start: u64,
    max_steps: u64,
    faults: FaultPlan,
    break_si: bool,
    break_2pc: bool,
    break_index: bool,
    expect_violation: bool,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            backends: vec![BackendKind::SiHtm],
            workloads: vec![WorkloadKind::Bank],
            threads: 3,
            txns: 8,
            seeds: 100,
            seed_start: 0,
            max_steps: 500_000,
            faults: FaultPlan::default(),
            break_si: false,
            break_2pc: false,
            break_index: false,
            expect_violation: false,
            out: "tm-check-failure.txt".to_string(),
        }
    }
}

const USAGE: &str = "\
tm-check: deterministic schedule exploration + history checking for the TM stack

USAGE:
    tm-check [OPTIONS]

OPTIONS:
    --backend KIND      htm | si-htm | p8tm | silo | all        [default: si-htm]
    --workload KIND     counter | bank | btree | txkv | xshard | recovery |
                        typed-index | all                       [default: bank]
    --threads N         virtual threads per run                 [default: 3]
    --txns N            transactions per thread                 [default: 8]
    --seeds N           seeds per (backend, workload) combo     [default: 100]
    --seed-start N      first seed                              [default: 0]
    --max-steps N       yield-point budget per run              [default: 500000]
    --fault-access N    forced-abort probability at accesses, per mille
    --fault-commit N    forced-abort probability at commit, per mille
    --break-si          disable SI-HTM's quiescence wait (seeded bug)
    --break-2pc         crash the xshard 2PC coordinator mid-apply (seeded bug)
    --break-index       skip typed-index secondary-index maintenance (seeded bug)
    --expect-violation  exit 0 iff a violation IS found (CI negative test)
    --out FILE          write the shrunk failing schedule here
                        [default: tm-check-failure.txt]
    --help              show this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--backend" => {
                args.backends = match value("--backend")?.as_str() {
                    "htm" => vec![BackendKind::Htm],
                    "si-htm" | "sihtm" => vec![BackendKind::SiHtm],
                    "p8tm" => vec![BackendKind::P8tm],
                    "silo" => vec![BackendKind::Silo],
                    "all" => BackendKind::ALL.to_vec(),
                    other => return Err(format!("unknown backend '{other}'")),
                };
            }
            "--workload" => {
                args.workloads = match value("--workload")?.as_str() {
                    "counter" => vec![WorkloadKind::Counter],
                    "bank" => vec![WorkloadKind::Bank],
                    "btree" => vec![WorkloadKind::Btree],
                    "txkv" => vec![WorkloadKind::Txkv],
                    "xshard" => vec![WorkloadKind::XShard],
                    "recovery" => vec![WorkloadKind::Recovery],
                    "typed-index" | "typedindex" => vec![WorkloadKind::TypedIndex],
                    "all" => WorkloadKind::ALL.to_vec(),
                    other => return Err(format!("unknown workload '{other}'")),
                };
            }
            "--threads" => args.threads = num(&value("--threads")?)? as usize,
            "--txns" => args.txns = num(&value("--txns")?)? as usize,
            "--seeds" => args.seeds = num(&value("--seeds")?)?,
            "--seed-start" => args.seed_start = num(&value("--seed-start")?)?,
            "--max-steps" => args.max_steps = num(&value("--max-steps")?)?,
            "--fault-access" => {
                args.faults.access_abort_per_mille = num(&value("--fault-access")?)? as u32
            }
            "--fault-commit" => {
                args.faults.commit_abort_per_mille = num(&value("--fault-commit")?)? as u32
            }
            "--break-si" => args.break_si = true,
            "--break-2pc" => args.break_2pc = true,
            "--break-index" => args.break_index = true,
            "--expect-violation" => args.expect_violation = true,
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.threads == 0 || args.threads > 16 {
        return Err("--threads must be in 1..=16".to_string());
    }
    Ok(args)
}

fn num(s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("'{s}' is not a number"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tm-check: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut violation = None;
    'sweep: for &backend in &args.backends {
        for &workload in &args.workloads {
            let cfg = CheckConfig {
                backend,
                workload,
                threads: args.threads,
                txns_per_thread: args.txns,
                max_steps: args.max_steps,
                faults: args.faults,
                break_si: args.break_si,
                break_2pc: args.break_2pc,
                break_index: args.break_index,
            };
            let range = args.seed_start..args.seed_start + args.seeds;
            match tm_check::check_seeds(&cfg, range) {
                Ok(agg) => {
                    println!(
                        "ok   {:>6} x {:<7} seeds={} txns={} steps={}{}",
                        backend.name(),
                        workload.name(),
                        agg.seeds,
                        agg.committed_txns,
                        agg.steps,
                        if agg.overflowed > 0 {
                            format!("  ({} overflowed/inconclusive)", agg.overflowed)
                        } else {
                            String::new()
                        }
                    );
                }
                Err(f) => {
                    println!(
                        "FAIL {:>6} x {:<7} seed={}: {}",
                        backend.name(),
                        workload.name(),
                        f.seed,
                        f.message
                    );
                    violation = Some(f);
                    break 'sweep;
                }
            }
        }
    }
    match (violation, args.expect_violation) {
        (None, false) => ExitCode::SUCCESS,
        (None, true) => {
            eprintln!("tm-check: expected a violation but every seed passed");
            ExitCode::from(1)
        }
        (Some(f), expected) => {
            eprintln!("\n{}", f.pretty);
            if let Err(e) = std::fs::write(&args.out, &f.pretty) {
                eprintln!("tm-check: could not write {}: {e}", args.out);
            } else {
                eprintln!("shrunk schedule written to {}", args.out);
            }
            if expected {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
    }
}
