//! tm-check end-to-end: determinism, replay, clean sweeps over every
//! backend x workload, fault-injection sweeps, and the seeded-bug
//! acceptance test (quiescence off => SI violation with a shrunk trace).

use tm_check::{
    check_seed, check_seeds, execute, BackendKind, CheckConfig, FaultPlan, WorkloadKind,
};

fn cfg(backend: BackendKind, workload: WorkloadKind) -> CheckConfig {
    CheckConfig { backend, workload, ..CheckConfig::default() }
}

#[test]
fn same_seed_same_run() {
    for &backend in &BackendKind::ALL {
        let c = cfg(backend, WorkloadKind::Bank);
        let a = execute(&c, 42, Vec::new());
        let b = execute(&c, 42, Vec::new());
        assert_eq!(a.run.trace, b.run.trace, "{}: trace diverged", backend.name());
        assert_eq!(a.run.log, b.run.log, "{}: log diverged", backend.name());
        assert!(a.failure.is_none(), "{}: {:?}", backend.name(), a.failure);
    }
}

#[test]
fn replay_reproduces_log() {
    let c = cfg(BackendKind::SiHtm, WorkloadKind::Bank);
    let a = execute(&c, 7, Vec::new());
    let b = execute(&c, 7, a.run.trace.clone());
    assert_eq!(a.run.log, b.run.log, "replaying the trace must reproduce the log");
}

#[test]
fn clean_sweep_all_backends_all_workloads() {
    for &backend in &BackendKind::ALL {
        for &workload in &WorkloadKind::ALL {
            let c = cfg(backend, workload);
            if let Err(f) = check_seeds(&c, 0..30) {
                panic!(
                    "{} x {} failed at seed {}: {}\n{}",
                    backend.name(),
                    workload.name(),
                    f.seed,
                    f.message,
                    f.pretty
                );
            }
        }
    }
}

#[test]
fn clean_sweep_with_fault_injection() {
    let faults = FaultPlan { access_abort_per_mille: 30, commit_abort_per_mille: 30 };
    for &backend in &BackendKind::ALL {
        let c = CheckConfig { faults, ..cfg(backend, WorkloadKind::Bank) };
        if let Err(f) = check_seeds(&c, 0..20) {
            panic!("{} under faults failed at seed {}: {}", backend.name(), f.seed, f.message);
        }
    }
}

#[test]
fn history_is_nonempty_and_committed() {
    let c = cfg(BackendKind::SiHtm, WorkloadKind::Counter);
    let out = execute(&c, 3, Vec::new());
    assert!(out.failure.is_none(), "{:?}", out.failure);
    assert!(!out.run.overflowed);
    // 3 threads x 8 txns, none of which user-abort: all commit.
    assert_eq!(out.txns.len(), c.threads * c.txns_per_thread);
    // Commit order is ascending by construction.
    assert!(out.txns.windows(2).all(|w| w[0].commit_idx < w[1].commit_idx));
}

/// The txkv handoff scenario is deterministic and clean: requests pushed
/// through the bounded submission queue are all served, batched audits
/// observe consistent snapshots, and replaying a trace reproduces the
/// exact serialized log (the queue mutex never spans a yield point).
#[test]
fn txkv_handoff_is_deterministic_and_clean() {
    for &backend in &BackendKind::ALL {
        let c = cfg(backend, WorkloadKind::Txkv);
        let a = execute(&c, 11, Vec::new());
        assert!(a.failure.is_none(), "{}: {:?}", backend.name(), a.failure);
        let b = execute(&c, 11, a.run.trace.clone());
        assert_eq!(a.run.log, b.run.log, "{}: txkv replay diverged", backend.name());
    }
    // Degenerate single-thread run: enqueue the script, then serve it.
    let c = CheckConfig { threads: 1, ..cfg(BackendKind::SiHtm, WorkloadKind::Txkv) };
    let out = execute(&c, 5, Vec::new());
    assert!(out.failure.is_none(), "single-thread txkv: {:?}", out.failure);
    assert!(!out.txns.is_empty(), "the executor must have committed transactions");
}

/// The acceptance test: disabling SI-HTM's quiescence wait (the paper's
/// "safety wait", Alg. 2) must be caught as an SI violation, and the
/// shrunk reproduction must be materially smaller than the original.
#[test]
fn break_si_is_detected_and_shrunk() {
    let c = CheckConfig { break_si: true, ..cfg(BackendKind::SiHtm, WorkloadKind::Bank) };
    let mut found = None;
    for seed in 0..50 {
        if let Err(f) = check_seed(&c, seed) {
            found = Some(f);
            break;
        }
    }
    let f = found.expect("quiescence-off must produce an SI violation within 50 seeds");
    assert!(
        f.message.contains("SI violation") || f.message.contains("torn"),
        "unexpected verdict: {}",
        f.message
    );
    assert!(f.shrunk_trace_len <= f.original_trace_len);
    assert!(f.shrunk_trace_len > 0);
    assert!(f.pretty.contains("minimal interleaving"), "report must render the schedule");
    // The shrunk schedule must itself still fail when replayed: check_seed
    // re-executed it to produce `pretty`, so reaching here proves it, but
    // assert the trace really shrank into something human-sized.
    assert!(
        f.shrunk_trace_len < f.original_trace_len,
        "shrinking made no progress ({} -> {})",
        f.original_trace_len,
        f.shrunk_trace_len
    );
}

/// With quiescence ON (the paper's algorithm), the same sweep is clean —
/// the detector is specific to the seeded bug, not trigger-happy.
#[test]
fn unbroken_si_htm_passes_same_seeds() {
    let c = cfg(BackendKind::SiHtm, WorkloadKind::Bank);
    if let Err(f) = check_seeds(&c, 0..50) {
        panic!("unmodified SI-HTM flagged at seed {}: {}\n{}", f.seed, f.message, f.pretty);
    }
}

/// The cross-shard scenario (two independent backend instances, 2PC
/// transfers, locked audits) is deterministic and replayable on every
/// backend — the multi-backend event stream still shrinks and replays.
#[test]
fn xshard_is_deterministic_and_replayable() {
    for &backend in &BackendKind::ALL {
        let c = cfg(backend, WorkloadKind::XShard);
        let a = execute(&c, 13, Vec::new());
        assert!(a.failure.is_none(), "{}: {:?}", backend.name(), a.failure);
        let b = execute(&c, 13, a.run.trace.clone());
        assert_eq!(a.run.log, b.run.log, "{}: xshard replay diverged", backend.name());
    }
}

/// The 2PC acceptance test: a coordinator that "crashes" between its two
/// participant applies must be caught — by a locked global audit or by
/// end-of-run conservation. Cross-shard atomicity comes from the
/// protocol, not from any backend, so the seeded bug must be detected on
/// all four.
#[test]
fn break_2pc_is_detected_on_every_backend() {
    for &backend in &BackendKind::ALL {
        let c = CheckConfig { break_2pc: true, ..cfg(backend, WorkloadKind::XShard) };
        let mut found = None;
        for seed in 0..50 {
            if let Err(f) = check_seed(&c, seed) {
                found = Some(f);
                break;
            }
        }
        let f = found.unwrap_or_else(|| {
            panic!(
                "{}: a crashed 2PC coordinator must leak a half-applied transfer within 50 seeds",
                backend.name()
            )
        });
        assert!(
            f.message.contains("conserved") || f.message.contains("torn"),
            "{}: unexpected verdict: {}",
            backend.name(),
            f.message
        );
        assert!(f.shrunk_trace_len <= f.original_trace_len);
    }
}

/// With the coordinator intact, the identical sweep is clean: the
/// detector is specific to the seeded 2PC bug.
#[test]
fn unbroken_2pc_passes_same_seeds() {
    let c = cfg(BackendKind::SiHtm, WorkloadKind::XShard);
    if let Err(f) = check_seeds(&c, 0..50) {
        panic!("intact 2PC flagged at seed {}: {}\n{}", f.seed, f.message, f.pretty);
    }
}

/// The typed-index scenario (txkv-schema table + secondary index through
/// `LocalTx`) is deterministic and replayable on every backend.
#[test]
fn typed_index_is_deterministic_and_replayable() {
    for &backend in &BackendKind::ALL {
        let c = cfg(backend, WorkloadKind::TypedIndex);
        let a = execute(&c, 17, Vec::new());
        assert!(a.failure.is_none(), "{}: {:?}", backend.name(), a.failure);
        let b = execute(&c, 17, a.run.trace.clone());
        assert_eq!(a.run.log, b.run.log, "{}: typed-index replay diverged", backend.name());
    }
}

/// The index acceptance test: an update path that rewrites the indexed
/// column but skips the index move must be caught — by a committed
/// snapshot seeing base and index disagree, or by the end-of-run
/// reachability / dangling-entry sweep. Index atomicity comes from
/// doing both writes in one transaction, so the seeded bug must be
/// detected on all four backends.
#[test]
fn break_index_is_detected_on_every_backend() {
    for &backend in &BackendKind::ALL {
        let c = CheckConfig { break_index: true, ..cfg(backend, WorkloadKind::TypedIndex) };
        let mut found = None;
        for seed in 0..50 {
            if let Err(f) = check_seed(&c, seed) {
                found = Some(f);
                break;
            }
        }
        let f = found.unwrap_or_else(|| {
            panic!(
                "{}: skipped index maintenance must leave an unreachable row or \
                 dangling entry within 50 seeds",
                backend.name()
            )
        });
        assert!(
            f.message.contains("index") || f.message.contains("disagree"),
            "{}: unexpected verdict: {}",
            backend.name(),
            f.message
        );
        assert!(f.shrunk_trace_len <= f.original_trace_len);
    }
}

/// With index maintenance intact, the identical sweep is clean: the
/// detector is specific to the seeded index bug.
#[test]
fn unbroken_typed_index_passes_same_seeds() {
    let c = cfg(BackendKind::SiHtm, WorkloadKind::TypedIndex);
    if let Err(f) = check_seeds(&c, 0..50) {
        panic!("intact index flagged at seed {}: {}\n{}", f.seed, f.message, f.pretty);
    }
}
