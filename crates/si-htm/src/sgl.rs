//! The single-global-lock fall-back of Algorithm 2.
//!
//! SI-HTM's SGL is a plain software lock *outside* the simulated memory:
//! unlike the HTM baseline, SI-HTM cannot use early lock subscription
//! (ROTs do not detect write-after-read, and read-only transactions run
//! non-transactionally — paper footnote 2), so the lock word never needs
//! to generate hardware conflicts. Mutual exclusion with hardware paths is
//! obtained by draining: the holder waits until every published state is
//! `inactive`, and `SyncWithGL` makes new transactions wait while the lock
//! is held.

use std::sync::atomic::{AtomicU64, Ordering};

const FREE: u64 = u64::MAX;

/// The single global lock. Stores the holder's thread id (or `FREE`).
pub struct Sgl {
    word: AtomicU64,
}

impl Sgl {
    pub fn new() -> Self {
        Sgl { word: AtomicU64::new(FREE) }
    }

    /// Is the lock held by anyone? (`globalLock.isLocked()`).
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.word.load(Ordering::SeqCst) != FREE
    }

    /// Is the lock held by `tid`? (`globalLock.isLocked(tid)`).
    #[inline]
    pub fn is_held_by(&self, tid: usize) -> bool {
        self.word.load(Ordering::SeqCst) == tid as u64
    }

    /// Acquire for `tid`, spinning (with yields) while contended.
    pub fn lock(&self, tid: usize) {
        while self
            .word
            .compare_exchange_weak(FREE, tid as u64, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            htm_sim::util::spin_wait(|| !self.is_locked());
        }
    }

    /// Try to acquire without waiting.
    pub fn try_lock(&self, tid: usize) -> bool {
        self.word.compare_exchange(FREE, tid as u64, Ordering::SeqCst, Ordering::Relaxed).is_ok()
    }

    /// Release. Panics if the caller does not hold the lock.
    pub fn unlock(&self, tid: usize) {
        let prev = self.word.swap(FREE, Ordering::SeqCst);
        assert_eq!(prev, tid as u64, "SGL released by non-holder");
    }
}

impl Default for Sgl {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock_cycle() {
        let s = Sgl::new();
        assert!(!s.is_locked());
        s.lock(3);
        assert!(s.is_locked());
        assert!(s.is_held_by(3));
        assert!(!s.is_held_by(4));
        assert!(!s.try_lock(4));
        s.unlock(3);
        assert!(!s.is_locked());
        assert!(s.try_lock(4));
        s.unlock(4);
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn foreign_unlock_panics() {
        let s = Sgl::new();
        s.lock(1);
        s.unlock(2);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        use std::sync::atomic::AtomicU64;
        let s = Sgl::new();
        let counter = AtomicU64::new(0);
        crossbeam_utils::thread::scope(|scope| {
            for tid in 0..4 {
                let s = &s;
                let counter = &counter;
                scope.spawn(move |_| {
                    for _ in 0..500 {
                        s.lock(tid);
                        // Non-atomic-looking increment under the lock.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        s.unlock(tid);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }
}
