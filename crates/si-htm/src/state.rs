//! The shared per-thread state array of Algorithm 1.
//!
//! Each thread publishes its transactional phase in one cache-padded word:
//!
//! * `inactive = 0` — not running any transaction,
//! * `completed = 1` — finished all memory accesses, performing the safety
//!   wait before `HTMEnd`,
//! * any value `> 1` — *active*, stamped with the begin timestamp
//!   (`currentTime()` in clock cycles in the paper; our virtual clock here).
//!
//! The paper publishes these updates non-transactionally (under
//! suspend/resume) precisely so they neither occupy TMCAM entries nor
//! create hardware conflicts; plain Rust atomics have identical semantics,
//! so the array lives outside the simulated memory (see DESIGN.md §6).
//! The `sync` full barriers of Algorithm 1 map to `SeqCst` operations; the
//! read-only commit's `lwsync` maps to a `Release` fence.
//!
//! ## The active-thread registry
//!
//! Algorithm 1's safety wait reads `state[0..N−1]`, i.e. O(N) in the size
//! of the machine (N = 80 on the paper's testbed) regardless of how many
//! threads are actually running transactions. To make the wait O(active),
//! the array keeps a side bitmap of *possibly-in-transaction* threads:
//!
//! * [`set_active`] sets the thread's bit **before** publishing the
//!   timestamp, and [`set_inactive`] publishes `inactive` **before**
//!   clearing the bit — so the bit-set window is a superset of the
//!   published-active window. A bitmap-guided scan therefore never misses
//!   a thread whose `state[c] > completed` store is visible; missing a
//!   thread that is concurrently *becoming* active merely linearises the
//!   snapshot before that thread's activation, which the algorithm already
//!   tolerates (Alg. 1 only waits for transactions that began before the
//!   snapshot).
//! * [`set_completed`] leaves the bit set: a completed-but-not-yet-inactive
//!   thread must still be visible to the SGL drain.
//!
//! Snapshot loads stay `SeqCst` (they implement the `sync` in Alg. 1 line
//! 16); only the *repeated poll* loads ([`poll`]) are relaxed to `Acquire`
//! — the poll needs eventual visibility plus a happens-before edge with
//! the polled thread's Release-or-stronger state store, not a place in the
//! total order. See DESIGN.md, "O(active) quiescence".

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

pub use txmem::clock::{COMPLETED, INACTIVE};

/// The `state[N]` array of Algorithm 1, plus the active-thread bitmap.
pub struct StateArray {
    slots: Box<[CachePadded<AtomicU64>]>,
    /// One bit per thread slot; bit set ⇒ the thread *may* be between
    /// `set_active` and the end of its `set_inactive`.
    active_bits: Box<[AtomicU64]>,
}

impl StateArray {
    pub fn new(threads: usize) -> Self {
        let mut v = Vec::with_capacity(threads);
        v.resize_with(threads, || CachePadded::new(AtomicU64::new(INACTIVE)));
        let mut b = Vec::with_capacity(threads.div_ceil(64));
        b.resize_with(threads.div_ceil(64), || AtomicU64::new(0));
        StateArray { slots: v.into_boxed_slice(), active_bits: b.into_boxed_slice() }
    }

    /// Number of thread slots (the paper's `N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `state[tid] ← ts; sync()` — announce an active transaction
    /// (Alg. 1 line 4 / Alg. 2 line 2). The registry bit goes up first so
    /// the bit-set window covers the published-active window.
    #[inline]
    pub fn set_active(&self, tid: usize, timestamp: u64) {
        debug_assert!(timestamp > COMPLETED, "timestamps must exceed the reserved values");
        self.active_bits[tid / 64].fetch_or(1 << (tid % 64), Ordering::SeqCst);
        self.slots[tid].store(timestamp, Ordering::SeqCst);
    }

    /// `state[tid] ← completed; sync()` (Alg. 1 line 13). The registry bit
    /// stays set: the SGL drain must still see this thread.
    #[inline]
    pub fn set_completed(&self, tid: usize) {
        self.slots[tid].store(COMPLETED, Ordering::SeqCst);
    }

    /// `state[tid] ← inactive` (Alg. 1 line 23 / Alg. 2 lines 5, 22, 36).
    /// The state store precedes the bit clear, keeping the superset
    /// invariant (see the module docs).
    #[inline]
    pub fn set_inactive(&self, tid: usize) {
        self.slots[tid].store(INACTIVE, Ordering::SeqCst);
        self.active_bits[tid / 64].fetch_and(!(1 << (tid % 64)), Ordering::SeqCst);
    }

    /// Current published state of a thread (full-barrier load).
    #[inline]
    pub fn load(&self, tid: usize) -> u64 {
        self.slots[tid].load(Ordering::SeqCst)
    }

    /// Relaxed-ordering re-read for quiescence poll loops: `Acquire`, so a
    /// change observed here happens-after everything the polled thread did
    /// before its state store, without a full barrier per spin.
    #[inline]
    pub fn poll(&self, tid: usize) -> u64 {
        self.slots[tid].load(Ordering::Acquire)
    }

    /// `snapshot[0..N−1] ← state[0..N−1]` (Alg. 1 line 16).
    pub fn snapshot_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.slots.iter().map(|s| s.load(Ordering::SeqCst)));
    }

    /// The O(active) form of Alg. 1 line 16: collect `(thread, state)` for
    /// every thread whose published state exceeds `completed`, visiting
    /// only threads with a registry bit set. These are exactly the threads
    /// the safety wait must poll.
    pub fn snapshot_active_into(&self, out: &mut Vec<(usize, u64)>) {
        out.clear();
        for (w, word) in self.active_bits.iter().enumerate() {
            let mut bits = word.load(Ordering::SeqCst);
            while bits != 0 {
                let tid = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let s = self.slots[tid].load(Ordering::SeqCst);
                if s > COMPLETED {
                    out.push((tid, s));
                }
            }
        }
    }

    /// True when every thread except `skip` is inactive (SGL drain,
    /// Alg. 2 lines 24–26). Bitmap-guided: only registered threads are
    /// examined, and a completed thread still counts as not-drained
    /// because its bit is still set and its state is `completed`.
    pub fn all_inactive_except(&self, skip: usize) -> bool {
        for (w, word) in self.active_bits.iter().enumerate() {
            let mut bits = word.load(Ordering::SeqCst);
            while bits != 0 {
                let tid = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if tid != skip && self.slots[tid].load(Ordering::SeqCst) != INACTIVE {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_transitions() {
        let st = StateArray::new(3);
        assert_eq!(st.load(1), INACTIVE);
        st.set_active(1, 42);
        assert_eq!(st.load(1), 42);
        assert_eq!(st.poll(1), 42);
        st.set_completed(1);
        assert_eq!(st.load(1), COMPLETED);
        st.set_inactive(1);
        assert_eq!(st.load(1), INACTIVE);
    }

    #[test]
    fn snapshot_reflects_all_slots() {
        let st = StateArray::new(3);
        st.set_active(0, 10);
        st.set_completed(2);
        let mut snap = Vec::new();
        st.snapshot_into(&mut snap);
        assert_eq!(snap, vec![10, INACTIVE, COMPLETED]);
    }

    #[test]
    fn active_snapshot_lists_only_active_threads() {
        let st = StateArray::new(130); // spans three bitmap words
        st.set_active(0, 10);
        st.set_active(65, 20);
        st.set_active(129, 30);
        st.set_active(7, 40);
        st.set_completed(7); // completed: bit set, state ≤ completed
        let mut snap = Vec::new();
        st.snapshot_active_into(&mut snap);
        assert_eq!(snap, vec![(0, 10), (65, 20), (129, 30)]);
        st.set_inactive(65);
        st.snapshot_active_into(&mut snap);
        assert_eq!(snap, vec![(0, 10), (129, 30)]);
    }

    #[test]
    fn registry_bit_outlives_completed_state() {
        // A completed thread must still block the SGL drain even though it
        // no longer appears in the active snapshot.
        let st = StateArray::new(4);
        st.set_active(2, 9);
        st.set_completed(2);
        let mut snap = Vec::new();
        st.snapshot_active_into(&mut snap);
        assert!(snap.is_empty(), "completed is not active");
        assert!(!st.all_inactive_except(0), "completed still blocks the drain");
        st.set_inactive(2);
        assert!(st.all_inactive_except(0));
    }

    #[test]
    fn drain_check() {
        let st = StateArray::new(3);
        assert!(st.all_inactive_except(0));
        st.set_active(2, 9);
        assert!(!st.all_inactive_except(0));
        assert!(st.all_inactive_except(2));
        st.set_inactive(2);
        assert!(st.all_inactive_except(0));
    }

    #[test]
    #[should_panic]
    fn reserved_timestamps_rejected_in_debug() {
        let st = StateArray::new(1);
        st.set_active(0, COMPLETED);
    }
}
