//! The shared per-thread state array of Algorithm 1.
//!
//! Each thread publishes its transactional phase in one cache-padded word:
//!
//! * `inactive = 0` — not running any transaction,
//! * `completed = 1` — finished all memory accesses, performing the safety
//!   wait before `HTMEnd`,
//! * any value `> 1` — *active*, stamped with the begin timestamp
//!   (`currentTime()` in clock cycles in the paper; our virtual clock here).
//!
//! The paper publishes these updates non-transactionally (under
//! suspend/resume) precisely so they neither occupy TMCAM entries nor
//! create hardware conflicts; plain Rust atomics have identical semantics,
//! so the array lives outside the simulated memory (see DESIGN.md §6).
//! The `sync` full barriers of Algorithm 1 map to `SeqCst` operations; the
//! read-only commit's `lwsync` maps to a `Release` fence.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

pub use txmem::clock::{COMPLETED, INACTIVE};

/// The `state[N]` array of Algorithm 1.
pub struct StateArray {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl StateArray {
    pub fn new(threads: usize) -> Self {
        let mut v = Vec::with_capacity(threads);
        v.resize_with(threads, || CachePadded::new(AtomicU64::new(INACTIVE)));
        StateArray { slots: v.into_boxed_slice() }
    }

    /// Number of thread slots (the paper's `N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `state[tid] ← ts; sync()` — announce an active transaction
    /// (Alg. 1 line 4 / Alg. 2 line 2).
    #[inline]
    pub fn set_active(&self, tid: usize, timestamp: u64) {
        debug_assert!(timestamp > COMPLETED, "timestamps must exceed the reserved values");
        self.slots[tid].store(timestamp, Ordering::SeqCst);
    }

    /// `state[tid] ← completed; sync()` (Alg. 1 line 13).
    #[inline]
    pub fn set_completed(&self, tid: usize) {
        self.slots[tid].store(COMPLETED, Ordering::SeqCst);
    }

    /// `state[tid] ← inactive` (Alg. 1 line 23 / Alg. 2 lines 5, 22, 36).
    #[inline]
    pub fn set_inactive(&self, tid: usize) {
        self.slots[tid].store(INACTIVE, Ordering::SeqCst);
    }

    /// Current published state of a thread.
    #[inline]
    pub fn load(&self, tid: usize) -> u64 {
        self.slots[tid].load(Ordering::SeqCst)
    }

    /// `snapshot[0..N−1] ← state[0..N−1]` (Alg. 1 line 16).
    pub fn snapshot_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.slots.iter().map(|s| s.load(Ordering::SeqCst)));
    }

    /// True when every thread except `skip` is inactive (SGL drain,
    /// Alg. 2 lines 24–26).
    pub fn all_inactive_except(&self, skip: usize) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(i, s)| i == skip || s.load(Ordering::SeqCst) == INACTIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_transitions() {
        let st = StateArray::new(3);
        assert_eq!(st.load(1), INACTIVE);
        st.set_active(1, 42);
        assert_eq!(st.load(1), 42);
        st.set_completed(1);
        assert_eq!(st.load(1), COMPLETED);
        st.set_inactive(1);
        assert_eq!(st.load(1), INACTIVE);
    }

    #[test]
    fn snapshot_reflects_all_slots() {
        let st = StateArray::new(3);
        st.set_active(0, 10);
        st.set_completed(2);
        let mut snap = Vec::new();
        st.snapshot_into(&mut snap);
        assert_eq!(snap, vec![10, INACTIVE, COMPLETED]);
    }

    #[test]
    fn drain_check() {
        let st = StateArray::new(3);
        assert!(st.all_inactive_except(0));
        st.set_active(2, 9);
        assert!(!st.all_inactive_except(0));
        assert!(st.all_inactive_except(2));
        st.set_inactive(2);
        assert!(st.all_inactive_except(0));
    }

    #[test]
    #[should_panic]
    fn reserved_timestamps_rejected_in_debug() {
        let st = StateArray::new(1);
        st.set_active(0, COMPLETED);
    }
}
