//! # SI-HTM — Snapshot Isolation over POWER8 hardware transactions
//!
//! This crate is the paper's primary contribution (Filipe et al.,
//! PPoPP '19): a software layer that turns P8-HTM *rollback-only
//! transactions* (ROTs) plus a *safety wait* (quiescence) before `HTMEnd`
//! into a restricted, single-version implementation of Snapshot Isolation —
//! with **no read instrumentation** and therefore no capacity bound on read
//! sets.
//!
//! ## Algorithm recap
//!
//! * **Update transactions** (Algorithm 1) run as ROTs. Before starting,
//!   the thread publishes a begin timestamp in the shared `state[]` array;
//!   on completion it publishes `completed` (non-transactionally, under
//!   suspend/resume), then waits until every transaction that was active in
//!   its snapshot of `state[]` has left that state, and only then issues
//!   `HTMEnd`. The wait guarantees that no concurrent transaction can
//!   observe both pre- and post-commit values of this writer — the dirty
//!   read / broken-snapshot anomaly of Fig. 3 — because any such reader
//!   either finishes first (and the writer waited for it) or its read
//!   invalidates the writer's TMCAM entry and kills it (Fig. 4A).
//! * **Read-only transactions** (Algorithm 2) run entirely
//!   non-transactionally: unbounded footprint, no aborts, only
//!   begin/end state publication so writers can quiesce on them.
//! * **Fall-back**: after exhausting its retry budget an update transaction
//!   acquires a single global lock, waits for all active transactions to
//!   drain, and runs non-transactionally.
//!
//! Correctness: every history SI-HTM admits is valid under SI (paper §3.4,
//! restrictions R1–R5); `tests/si_correctness.rs` stresses these as
//! executable properties.
//!
//! ## Example
//!
//! ```
//! use si_htm::{SiHtm, SiHtmConfig};
//! use tm_api::{TmBackend, TmThread, TxKind};
//!
//! let backend = SiHtm::with_defaults(1024);
//! let mut t = backend.register_thread();
//! t.exec(TxKind::Update, &mut |tx| {
//!     let v = tx.read(0)?;
//!     tx.write(0, v + 1)
//! });
//! t.exec(TxKind::ReadOnly, &mut |tx| {
//!     assert_eq!(tx.read(0)?, 1);
//!     Ok(())
//! });
//! ```

pub mod sgl;
pub mod state;
mod thread;

pub use thread::SiHtmThread;

use htm_sim::{Htm, HtmConfig};
use sgl::Sgl;
use state::StateArray;
use std::sync::Arc;
use tm_api::{BackoffPolicy, RetryPolicy, TmBackend, Watchdog};
use txmem::TxMemory;

/// Tunables of the SI-HTM layer.
#[derive(Debug, Clone)]
pub struct SiHtmConfig {
    /// Hardware retry budget before the SGL fall-back (Alg. 2 line 16).
    pub retry: RetryPolicy,
    /// Run declared read-only transactions on the non-transactional fast
    /// path (§3.3). Disabling routes them through ROTs + quiescence
    /// (ablation: isolates the fast path's contribution).
    pub ro_fast_path: bool,
    /// Perform the safety wait before `HTMEnd`. **Disabling breaks SI** —
    /// it exists solely for the ablation bench that measures the
    /// quiescence cost.
    pub quiescence: bool,
    /// Future-work "killing alternative" (§6): after this many wait
    /// iterations, a completed transaction kills the active transaction it
    /// is waiting for instead of spinning further. `None` disables.
    pub kill_after: Option<u32>,
    /// Future-work software-SI fall-back (§6: "how feasible a software
    /// based SI fallback path would be"): before resorting to the SGL, a
    /// transaction that exhausted its hardware budget is retried this many
    /// times as a *software* transaction — same ROT conflict protocol and
    /// quiescence, but with its sets tracked in ordinary memory and
    /// therefore no capacity bound. Software transactions run concurrently
    /// with each other and with hardware transactions; only after these
    /// attempts also fail (pure conflicts) does the SGL serialise.
    /// `None` disables (the paper's baseline behaviour).
    pub software_fallback: Option<u32>,
    /// Deadlines on the two unbounded waits (quiescence, SGL drain). A
    /// tripped quiescence deadline kills the straggler if it is a killable
    /// transaction and degrades the committer to the SGL-serialized slow
    /// path; a tripped drain deadline lets the SGL holder proceed without
    /// the straggler having quiesced. Both are counted in
    /// `ThreadStats::watchdog_*_trips`. See DESIGN.md §9.
    pub watchdog: Watchdog,
    /// Randomized exponential backoff between ROT retries (the contention
    /// manager). `BackoffPolicy::none()` restores back-to-back retries.
    pub backoff: BackoffPolicy,
}

impl Default for SiHtmConfig {
    fn default() -> Self {
        SiHtmConfig {
            retry: RetryPolicy::default(),
            ro_fast_path: true,
            quiescence: true,
            kill_after: None,
            software_fallback: None,
            watchdog: Watchdog::default(),
            backoff: BackoffPolicy::default(),
        }
    }
}

pub(crate) struct Inner {
    pub(crate) htm: Arc<Htm>,
    pub(crate) state: StateArray,
    pub(crate) sgl: Sgl,
    pub(crate) config: SiHtmConfig,
}

/// The SI-HTM backend. Cheap to clone (shared-state handle).
#[derive(Clone)]
pub struct SiHtm {
    inner: Arc<Inner>,
}

impl SiHtm {
    /// Build SI-HTM over a fresh simulated machine.
    pub fn new(htm_config: HtmConfig, memory_words: usize, config: SiHtmConfig) -> Self {
        let htm = Htm::new(htm_config, memory_words);
        Self::over(htm, config)
    }

    /// Build SI-HTM over an existing machine (shared with tests/harnesses).
    pub fn over(htm: Arc<Htm>, config: SiHtmConfig) -> Self {
        let threads = htm.config().max_threads();
        SiHtm {
            inner: Arc::new(Inner {
                htm,
                state: StateArray::new(threads),
                sgl: Sgl::new(),
                config,
            }),
        }
    }

    /// Default machine (10-core SMT-8 POWER8) and default tunables.
    pub fn with_defaults(memory_words: usize) -> Self {
        Self::new(HtmConfig::default(), memory_words, SiHtmConfig::default())
    }

    /// The underlying simulated machine.
    pub fn htm(&self) -> &Arc<Htm> {
        &self.inner.htm
    }

    /// The layer configuration.
    pub fn config(&self) -> &SiHtmConfig {
        &self.inner.config
    }
}

impl TmBackend for SiHtm {
    type Thread = SiHtmThread;

    fn name(&self) -> &'static str {
        "SI-HTM"
    }

    fn register_thread(&self) -> SiHtmThread {
        SiHtmThread::new(Arc::clone(&self.inner))
    }

    fn memory(&self) -> &TxMemory {
        self.inner.htm.memory()
    }
}

impl std::fmt::Debug for SiHtm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiHtm").field("config", &self.inner.config).finish()
    }
}
