//! Per-thread SI-HTM execution: Algorithm 1 (TxBegin/TxEnd with the safety
//! wait) and Algorithm 2 (SyncWithGL, read-only fast path, SGL fall-back).

use crate::Inner;
use htm_sim::util::{spin_wait, spin_wait_deadline, IntMap};
use htm_sim::{AbortReason, HtmThread, NonTxClass, TxMode};
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;
use tm_api::{Abort, ContentionManager, Outcome, ThreadStats, TmThread, Tx, TxBody, TxKind};
use txmem::hooks::{self, AbortCode, Event};
use txmem::Addr;

/// Ceiling for the anti-convoy jitter applied before (re-)attempting the
/// SGL after waiting it out — spreads a drained cohort so they don't
/// stampede the lock word in lockstep.
const SGL_ADMISSION_JITTER_NS: u64 = 2_000;

/// A worker thread registered with the SI-HTM backend.
pub struct SiHtmThread {
    inner: Arc<Inner>,
    thr: HtmThread,
    tid: usize,
    stats: ThreadStats,
    cm: ContentionManager,
    /// Set when the quiescence watchdog tripped: the retry loop must stop
    /// re-attempting ROTs (each attempt would wedge on the same straggler)
    /// and go straight to the SGL-serialized slow path.
    degrade_to_sgl: bool,
    /// Reusable `(thread, observed state)` buffer for the safety wait.
    snapshot: Vec<(usize, u64)>,
}

impl SiHtmThread {
    pub(crate) fn new(inner: Arc<Inner>) -> Self {
        let thr = inner.htm.register_thread();
        let tid = thr.tid();
        let cm = ContentionManager::new(inner.config.backoff, 0xC0DE ^ tid as u64);
        SiHtmThread {
            inner,
            thr,
            tid,
            stats: ThreadStats::default(),
            cm,
            degrade_to_sgl: false,
            snapshot: Vec::new(),
        }
    }

    /// Hardware-thread id on the simulated machine.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// `SyncWithGL` (Alg. 2 lines 1–9): announce activity, then back off
    /// while the global lock is held.
    fn sync_with_gl(&mut self) {
        loop {
            let ts = self.inner.htm.clock().now();
            self.inner.state.set_active(self.tid, ts);
            if !self.inner.sgl.is_locked() {
                return;
            }
            self.inner.state.set_inactive(self.tid);
            spin_wait(|| !self.inner.sgl.is_locked());
        }
    }

    /// Read-only fast path (Alg. 2 lines 12–14 and 34–36): run the body
    /// with plain non-transactional reads; unbounded footprint, no aborts.
    fn exec_ro(&mut self, body: TxBody<'_>) -> Outcome {
        self.sync_with_gl();
        self.thr.refresh_hooks();
        hooks::emit(Event::RoBegin);
        let r = {
            let mut tx = RoTx { thr: &mut self.thr };
            body(&mut tx)
        };
        // `lwsync` (Alg. 2 line 35): all reads performed before the state
        // change becomes visible.
        fence(Ordering::Release);
        self.inner.state.set_inactive(self.tid);
        match r {
            Ok(()) => {
                self.stats.commits += 1;
                self.stats.ro_commits += 1;
                hooks::emit(Event::RoCommit);
                Outcome::Committed
            }
            Err(Abort::User) => {
                self.stats.user_aborts += 1;
                hooks::emit(Event::Abort { reason: AbortCode::Explicit });
                Outcome::UserAborted
            }
            Err(Abort::Backend) => {
                unreachable!("the read-only fast path cannot incur backend aborts")
            }
        }
    }

    /// Algorithm 1's `TxEnd`: publish `completed` non-transactionally,
    /// perform the safety wait, then `HTMEnd`.
    fn tx_end(&mut self) -> Result<(), AbortReason> {
        // Lines 12–15: the state update must not occupy the TMCAM nor
        // generate hardware conflicts, hence suspend/resume around it.
        self.thr.suspend();
        self.inner.state.set_completed(self.tid);
        self.thr.resume()?;

        if self.inner.config.quiescence {
            // Lines 16–21: wait until every transaction that was active in
            // our snapshot has moved on. The snapshot visits only threads
            // in the active registry — O(active), not O(N); see
            // `StateArray::snapshot_active_into`.
            let mut snapshot = std::mem::take(&mut self.snapshot);
            self.inner.state.snapshot_active_into(&mut snapshot);
            self.stats.quiesce_polled += snapshot.len() as u64;
            let mut waited = false;
            let mut doomed = false;
            let mut tripped = false;
            let deadline = self.inner.config.watchdog.quiesce;
            for &(c, observed) in &snapshot {
                if c == self.tid {
                    continue;
                }
                let mut spins: u32 = 0;
                let report = spin_wait_deadline(
                    || {
                        if self.inner.state.poll(c) != observed {
                            return true;
                        }
                        waited = true;
                        // A concurrent reader may invalidate our write set
                        // while we wait (Fig. 4A) — abort promptly.
                        if self.thr.doomed().is_some() {
                            doomed = true;
                            return true;
                        }
                        if let Some(limit) = self.inner.config.kill_after {
                            if spins >= limit {
                                // Future-work "killing alternative": stop
                                // waiting for the straggler, kill it.
                                self.inner.htm.kill_active(c, AbortReason::Conflict);
                            }
                        }
                        spins = spins.saturating_add(1);
                        false
                    },
                    deadline,
                );
                self.stats.max_wait_ns = self.stats.max_wait_ns.max(report.waited_ns);
                if report.timed_out {
                    // Watchdog trip: the peer has not moved for the whole
                    // deadline — descheduled, wedged, or stalled forever.
                    // Kill it if it is a killable transaction (an active
                    // ROT will observe the kill at its next access or
                    // commit); a fast-path reader is not killable, and a
                    // descheduled victim would not notice anyway, so
                    // either way stop waiting and degrade this commit to
                    // the SGL-serialized slow path. Only the straggler's
                    // snapshot guarantee is forfeited — and the trip is
                    // reported, not silent.
                    self.inner.htm.kill_active(c, AbortReason::Conflict);
                    self.stats.watchdog_quiesce_trips += 1;
                    tripped = true;
                    break;
                }
                if doomed {
                    break;
                }
            }
            self.snapshot = snapshot;
            if waited {
                self.stats.quiesce_waits += 1;
            }
            if tripped {
                self.degrade_to_sgl = true;
                return Err(self.thr.abort());
            }
            if doomed {
                return Err(self.thr.abort());
            }
        }

        self.thr.commit()
    }

    /// One ROT attempt (hardware, or software-unbounded for the §6
    /// fall-back). `Ok(outcome)` ends the transaction; `Err(reason)`
    /// means the attempt aborted and the caller decides whether to retry.
    fn attempt(&mut self, body: TxBody<'_>, software: bool) -> Result<Outcome, AbortReason> {
        self.sync_with_gl();
        if software {
            self.thr.begin_unbounded(TxMode::Rot);
        } else {
            self.thr.begin(TxMode::Rot);
        }
        let (result, reason) = {
            let mut tx = RotTx { thr: &mut self.thr, reason: None };
            let r = body(&mut tx);
            (r, tx.reason)
        };
        match result {
            Ok(()) => match self.tx_end() {
                Ok(()) => {
                    self.inner.state.set_inactive(self.tid);
                    self.stats.commits += 1;
                    if software {
                        self.stats.sw_commits += 1;
                    }
                    Ok(Outcome::Committed)
                }
                Err(reason) => {
                    self.inner.state.set_inactive(self.tid);
                    self.stats.record_abort(reason);
                    Err(reason)
                }
            },
            Err(Abort::Backend) => {
                let reason = reason.expect("backend abort without recorded reason");
                self.inner.state.set_inactive(self.tid);
                self.stats.record_abort(reason);
                Err(reason)
            }
            Err(Abort::User) => {
                if self.thr.in_tx() {
                    self.thr.abort();
                }
                self.inner.state.set_inactive(self.tid);
                self.stats.user_aborts += 1;
                Ok(Outcome::UserAborted)
            }
        }
    }

    /// Future-work "batching alternative" (§6): execute several update
    /// bodies inside **one** ROT and **one** safety wait, amortising the
    /// quiescence cost that idle-waiting writers otherwise pay per
    /// transaction. The batch is atomic: all bodies commit together, and a
    /// user abort from any body rolls the whole batch back (a single
    /// hardware transaction cannot partially roll back).
    pub fn exec_update_batch(&mut self, bodies: &mut [TxBody<'_>]) -> Outcome {
        if bodies.is_empty() {
            return Outcome::Committed;
        }
        let mut run_all = |tx: &mut dyn Tx| -> Result<(), Abort> {
            for body in bodies.iter_mut() {
                body(tx)?;
            }
            Ok(())
        };
        self.exec_update(&mut run_all)
    }

    /// Update-transaction path: ROT attempts with retry budget, then the
    /// optional software-SI fall-back, then the SGL (Alg. 2 lines 16–27).
    fn exec_update(&mut self, body: TxBody<'_>) -> Outcome {
        let policy = self.inner.config.retry;
        let mut retry = tm_api::policy::RetryState::new(&policy);
        self.cm.reset();
        self.degrade_to_sgl = false;
        loop {
            match self.attempt(body, false) {
                Ok(outcome) => return outcome,
                Err(reason) => {
                    // A tripped quiescence watchdog means a straggler is
                    // wedged: every further hardware attempt would hit the
                    // same wait, so serialise immediately.
                    if self.degrade_to_sgl {
                        return self.exec_sgl(body);
                    }
                    if !retry.on_abort(&policy, reason) {
                        break;
                    }
                    // Contention manager: space the retries out (convoys
                    // re-collide; capacity repeats). Abort path only.
                    if self.cm.backoff(reason) > 0 {
                        self.stats.backoffs += 1;
                    }
                }
            }
        }
        if let Some(sw_attempts) = self.inner.config.software_fallback {
            // §6 future work: run as a software transaction — unbounded
            // capacity, concurrent with everything — before serialising.
            for _ in 0..sw_attempts {
                match self.attempt(body, true) {
                    Ok(outcome) => return outcome,
                    Err(_) if self.degrade_to_sgl => break,
                    Err(_) => continue, // pure conflict; retry or escalate
                }
            }
        }
        self.exec_sgl(body)
    }

    /// SGL fall-back (Alg. 2 lines 22–26 and 31–32): acquire the lock, wait
    /// until every other transaction drained, run non-transactionally.
    /// Writes are buffered locally so a user abort still rolls back.
    fn exec_sgl(&mut self, body: TxBody<'_>) -> Outcome {
        debug_assert!(!self.thr.in_tx());
        self.inner.state.set_inactive(self.tid);
        // Anti-convoy admission: threads escalating together (an SGL
        // storm) otherwise slam the lock word in lockstep; a small flat
        // jitter staggers them.
        if self.cm.admission_jitter(SGL_ADMISSION_JITTER_NS) > 0 {
            self.stats.backoffs += 1;
        }
        self.inner.sgl.lock(self.tid);
        self.stats.sgl_acquisitions += 1;
        let report = spin_wait_deadline(
            || self.inner.state.all_inactive_except(self.tid),
            self.inner.config.watchdog.drain,
        );
        self.stats.max_wait_ns = self.stats.max_wait_ns.max(report.waited_ns);
        if report.timed_out {
            // The drain hit the same wedged straggler the quiescence
            // watchdog degrades around. Proceed serialized: SyncWithGL
            // keeps new transactions out while the lock is held, so only
            // the non-draining straggler's snapshot is at risk — reported,
            // not silent.
            self.stats.watchdog_drain_trips += 1;
        }
        self.thr.refresh_hooks();
        hooks::emit(Event::SglLock);
        let (result, wbuf) = {
            let mut tx = SglTx { thr: &mut self.thr, wbuf: IntMap::default() };
            let r = body(&mut tx);
            (r, tx.wbuf)
        };
        let outcome = match result {
            Ok(()) => {
                for (addr, val) in wbuf {
                    self.thr.write_notx(addr, val, NonTxClass::Sgl);
                }
                self.stats.commits += 1;
                self.stats.sgl_commits += 1;
                Outcome::Committed
            }
            Err(Abort::User) => {
                self.stats.user_aborts += 1;
                Outcome::UserAborted
            }
            Err(Abort::Backend) => unreachable!("the SGL path cannot incur backend aborts"),
        };
        self.inner.sgl.unlock(self.tid);
        hooks::emit(Event::SglUnlock { committed: outcome == Outcome::Committed });
        outcome
    }
}

/// Panic safety: a body that unwinds out of `exec` leaves three pieces of
/// shared state behind — the in-flight hardware transaction (rolled back
/// here, before the `HtmThread` field's own Drop, so the ordering below
/// holds), the published entry in the `state[]` array (peers quiesce on
/// it: left active, it would wedge every writer's safety wait), and
/// possibly the SGL (left locked, `SyncWithGL` would park every thread
/// forever). All three are released, in that order, and the panic
/// continues to propagate.
impl Drop for SiHtmThread {
    fn drop(&mut self) {
        if self.thr.in_tx() {
            self.thr.abort();
        }
        self.inner.state.set_inactive(self.tid);
        if self.inner.sgl.is_held_by(self.tid) {
            self.inner.sgl.unlock(self.tid);
        }
    }
}

impl TmThread for SiHtmThread {
    fn exec(&mut self, kind: TxKind, body: TxBody<'_>) -> Outcome {
        match kind {
            TxKind::ReadOnly if self.inner.config.ro_fast_path => self.exec_ro(body),
            _ => self.exec_update(body),
        }
    }

    fn exec_escalated(&mut self, body: TxBody<'_>) -> Outcome {
        self.exec_sgl(body)
    }

    fn stats(&self) -> &ThreadStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = ThreadStats::default();
    }
}

/// Access handle of the read-only fast path: plain non-transactional reads.
struct RoTx<'a> {
    thr: &'a mut HtmThread,
}

impl Tx for RoTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        Ok(self.thr.read_notx(addr, NonTxClass::Data))
    }

    fn write(&mut self, _addr: Addr, _val: u64) -> Result<(), Abort> {
        panic!(
            "transaction declared ReadOnly performed a write — \
             SI-HTM read-only transactions must not update shared data (§3.3)"
        );
    }
}

/// Access handle of the ROT path: uninstrumented hardware accesses.
struct RotTx<'a> {
    thr: &'a mut HtmThread,
    reason: Option<AbortReason>,
}

impl Tx for RotTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        self.thr.read(addr).map_err(|r| {
            self.reason = Some(r);
            Abort::Backend
        })
    }

    fn write(&mut self, addr: Addr, val: u64) -> Result<(), Abort> {
        self.thr.write(addr, val).map_err(|r| {
            self.reason = Some(r);
            Abort::Backend
        })
    }
}

/// Access handle of the SGL path: exclusive non-transactional execution
/// with locally-buffered writes (for user-abort rollback).
struct SglTx<'a> {
    thr: &'a mut HtmThread,
    wbuf: IntMap<Addr, u64>,
}

impl Tx for SglTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        if let Some(v) = self.wbuf.get(&addr) {
            return Ok(*v);
        }
        Ok(self.thr.read_notx(addr, NonTxClass::Sgl))
    }

    fn write(&mut self, addr: Addr, val: u64) -> Result<(), Abort> {
        self.wbuf.insert(addr, val);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SiHtm, SiHtmConfig};
    use htm_sim::HtmConfig;
    use tm_api::TmBackend;

    fn small_backend() -> SiHtm {
        SiHtm::new(HtmConfig::small(), 4096, SiHtmConfig::default())
    }

    #[test]
    fn update_transaction_commits() {
        let b = small_backend();
        let mut t = b.register_thread();
        let out = t.exec(TxKind::Update, &mut |tx| {
            let v = tx.read(0)?;
            tx.write(0, v + 5)
        });
        assert_eq!(out, Outcome::Committed);
        assert_eq!(b.memory().load(0), 5);
        assert_eq!(t.stats().commits, 1);
        assert_eq!(t.stats().aborts(), 0);
    }

    #[test]
    fn read_only_fast_path_reads_committed_data() {
        let b = small_backend();
        b.memory().store(8, 77);
        let mut t = b.register_thread();
        let mut seen = 0;
        let out = t.exec(TxKind::ReadOnly, &mut |tx| {
            seen = tx.read(8)?;
            Ok(())
        });
        assert_eq!(out, Outcome::Committed);
        assert_eq!(seen, 77);
        assert_eq!(t.stats().ro_commits, 1);
    }

    #[test]
    #[should_panic(expected = "ReadOnly performed a write")]
    fn read_only_write_is_a_bug() {
        let b = small_backend();
        let mut t = b.register_thread();
        t.exec(TxKind::ReadOnly, &mut |tx| tx.write(0, 1));
    }

    #[test]
    fn user_abort_rolls_back_update() {
        let b = small_backend();
        let mut t = b.register_thread();
        let out = t.exec(TxKind::Update, &mut |tx| {
            tx.write(0, 123)?;
            Err(Abort::User)
        });
        assert_eq!(out, Outcome::UserAborted);
        assert_eq!(b.memory().load(0), 0);
        assert_eq!(t.stats().user_aborts, 1);
        assert_eq!(t.stats().commits, 0);
    }

    #[test]
    fn capacity_overflow_falls_back_to_sgl_and_commits() {
        // Tiny TMCAM: an update writing 8 lines cannot run as a ROT.
        let b = SiHtm::new(
            HtmConfig { cores: 1, smt: 2, tmcam_lines: 4, ..HtmConfig::default() },
            16 * 64,
            SiHtmConfig::default(),
        );
        let mut t = b.register_thread();
        let out = t.exec(TxKind::Update, &mut |tx| {
            for i in 0..8u64 {
                tx.write(i * 16, i + 1)?;
            }
            Ok(())
        });
        assert_eq!(out, Outcome::Committed);
        for i in 0..8u64 {
            assert_eq!(b.memory().load(i * 16), i + 1);
        }
        assert!(t.stats().aborts_capacity > 0, "capacity aborts recorded");
        assert_eq!(t.stats().sgl_commits, 1, "committed on the SGL path");
        assert_eq!(t.stats().sgl_acquisitions, 1);
    }

    #[test]
    fn unbounded_reads_in_update_transactions() {
        // An update transaction reading 100 lines but writing one commits
        // in hardware: SI-HTM bounds only the write set (the headline).
        let b = SiHtm::new(
            HtmConfig { cores: 1, smt: 2, tmcam_lines: 8, ..HtmConfig::default() },
            16 * 128,
            SiHtmConfig::default(),
        );
        let mut t = b.register_thread();
        let out = t.exec(TxKind::Update, &mut |tx| {
            let mut sum = 0;
            for i in 0..100u64 {
                sum += tx.read(i * 16)?;
            }
            tx.write(0, sum + 1)
        });
        assert_eq!(out, Outcome::Committed);
        assert_eq!(t.stats().sgl_commits, 0, "no fall-back needed");
        assert_eq!(t.stats().aborts_capacity, 0);
    }

    #[test]
    fn quiescence_polls_only_active_threads() {
        // Full paper-testbed machine: 80 hardware threads. The pre-registry
        // safety wait examined all N−1 peer slots per commit; with the
        // active-thread registry a writer committing alongside exactly one
        // active reader must examine exactly one.
        use std::sync::atomic::{AtomicBool, Ordering};
        let b = SiHtm::new(HtmConfig::default(), 4096, SiHtmConfig::default());
        let in_body = AtomicBool::new(false);
        crossbeam_utils::thread::scope(|s| {
            let b2 = b.clone();
            let in_body = &in_body;
            s.spawn(move |_| {
                let mut r = b2.register_thread();
                r.exec(TxKind::ReadOnly, &mut |tx| {
                    // Disjoint line from the writer's, so this RO read does
                    // not kill the writer.
                    let _ = tx.read(1024)?;
                    in_body.store(true, Ordering::Release);
                    // Stay "active" long enough for the writer's snapshot.
                    std::thread::sleep(std::time::Duration::from_millis(300));
                    Ok(())
                });
            });
            while !in_body.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            let mut w = b.register_thread();
            let out = w.exec(TxKind::Update, &mut |tx| tx.write(0, 7));
            assert_eq!(out, Outcome::Committed);
            assert_eq!(
                w.stats().quiesce_polled,
                1,
                "snapshot must cover exactly the one active reader, not N−1 slots"
            );
            assert_eq!(w.stats().quiesce_waits, 1, "the writer did wait for the reader");
        })
        .unwrap();
        assert_eq!(b.memory().load(0), 7);
    }

    #[test]
    fn uncontended_commit_examines_no_peer_slots() {
        let b = small_backend();
        let mut t = b.register_thread();
        t.exec(TxKind::Update, &mut |tx| tx.write(0, 1));
        assert_eq!(t.stats().quiesce_polled, 0);
        assert_eq!(t.stats().quiesce_waits, 0);
    }

    #[test]
    fn stats_reset() {
        let b = small_backend();
        let mut t = b.register_thread();
        tm_api::increment(&mut t, 0);
        assert_eq!(t.stats().commits, 1);
        t.reset_stats();
        assert_eq!(t.stats().commits, 0);
    }
}
