//! Tests of the software-SI fall-back path (paper §6 future work): after a
//! transaction exhausts its hardware retries, it re-runs as a *software*
//! transaction — same ROT conflict protocol and quiescence, sets tracked
//! in ordinary memory, no capacity bound — concurrently with everything
//! else, instead of serialising on the SGL.

use htm_sim::HtmConfig;
use si_htm::{SiHtm, SiHtmConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use tm_api::{Outcome, RetryPolicy, TmBackend, TmThread, TxKind};

fn config_with_sw() -> SiHtmConfig {
    SiHtmConfig { software_fallback: Some(1000), ..SiHtmConfig::default() }
}

#[test]
fn capacity_overflow_commits_in_software_without_sgl() {
    let b = SiHtm::new(
        HtmConfig { cores: 1, smt: 2, tmcam_lines: 4, ..HtmConfig::default() },
        16 * 64,
        config_with_sw(),
    );
    let mut t = b.register_thread();
    let out = t.exec(TxKind::Update, &mut |tx| {
        for i in 0..16u64 {
            tx.write(i * 16, i + 1)?;
        }
        Ok(())
    });
    assert_eq!(out, Outcome::Committed);
    for i in 0..16u64 {
        assert_eq!(b.memory().load(i * 16), i + 1);
    }
    assert_eq!(t.stats().sw_commits, 1, "committed on the software path");
    assert_eq!(t.stats().sgl_acquisitions, 0, "no SGL needed");
    assert!(t.stats().aborts_capacity > 0, "hardware attempts did overflow");
}

#[test]
fn software_transactions_run_concurrently() {
    // Two over-capacity transactions on *disjoint* lines: with the SGL
    // fall-back they would serialise; on the software path they overlap.
    // Overlap is proven with an in-transaction rendezvous that only
    // resolves when both bodies are inside their (software) transactions.
    let b = SiHtm::new(
        HtmConfig { cores: 2, smt: 1, tmcam_lines: 4, ..HtmConfig::default() },
        16 * 128,
        SiHtmConfig {
            // One hardware attempt (doomed to capacity-abort), then software.
            retry: RetryPolicy { budget: 1, capacity_cost: 1 },
            software_fallback: Some(1000),
            ..SiHtmConfig::default()
        },
    );
    let rendezvous = AtomicU64::new(0);

    crossbeam_utils::thread::scope(|s| {
        for part in 0..2u64 {
            let b = b.clone();
            let rendezvous = &rendezvous;
            s.spawn(move |_| {
                let mut t = b.register_thread();
                let base = part * 32; // disjoint 16-line regions
                let mut synced = false;
                let out = t.exec(TxKind::Update, &mut |tx| {
                    for i in 0..16u64 {
                        tx.write((base + i) * 16, part + 1)?;
                    }
                    if !synced {
                        rendezvous.fetch_add(1, Ordering::AcqRel);
                        let mut spins = 0u64;
                        while rendezvous.load(Ordering::Acquire) < 2 {
                            std::thread::yield_now();
                            spins += 1;
                            assert!(
                                spins < 50_000_000,
                                "peer never entered its transaction: fall-backs serialised"
                            );
                        }
                        synced = true;
                    }
                    Ok(())
                });
                assert_eq!(out, Outcome::Committed);
                assert_eq!(t.stats().sw_commits, 1);
                assert_eq!(t.stats().sgl_acquisitions, 0);
            });
        }
    })
    .unwrap();

    for part in 0..2u64 {
        for i in 0..16u64 {
            assert_eq!(b.memory().load((part * 32 + i) * 16), part + 1);
        }
    }
}

#[test]
fn software_transactions_still_conflict_correctly() {
    // Over-capacity increments on the SAME lines: software transactions
    // must serialise through conflicts, not lose updates.
    let b = SiHtm::new(
        HtmConfig { cores: 2, smt: 2, tmcam_lines: 4, ..HtmConfig::default() },
        16 * 64,
        config_with_sw(),
    );
    let threads = 4;
    let per = 100u64;
    crossbeam_utils::thread::scope(|s| {
        for _ in 0..threads {
            let b = b.clone();
            s.spawn(move |_| {
                let mut t = b.register_thread();
                for _ in 0..per {
                    let out = t.exec(TxKind::Update, &mut |tx| {
                        // 8 lines read-modify-write: over the 4-line TMCAM.
                        for i in 0..8u64 {
                            let v = tx.read(i * 16)?;
                            tx.write(i * 16, v + 1)?;
                        }
                        Ok(())
                    });
                    assert_eq!(out, Outcome::Committed);
                }
            });
        }
    })
    .unwrap();
    for i in 0..8u64 {
        assert_eq!(b.memory().load(i * 16), threads as u64 * per, "line {i} lost updates");
    }
}

#[test]
fn software_path_preserves_snapshots_for_readers() {
    // A software writer updating (x, y) pairs must still be invisible to
    // read-only transactions until its (quiesced) commit.
    let b = SiHtm::new(
        HtmConfig { cores: 2, smt: 2, tmcam_lines: 2, ..HtmConfig::default() },
        256,
        config_with_sw(),
    );
    let stop = AtomicU64::new(0);
    crossbeam_utils::thread::scope(|s| {
        let bw = b.clone();
        let stop_w = &stop;
        s.spawn(move |_| {
            let mut t = bw.register_thread();
            for i in 1..200u64 {
                t.exec(TxKind::Update, &mut |tx| {
                    // 4 lines: over the tiny 2-line TMCAM → software path.
                    tx.write(0, i)?;
                    tx.write(16, i)?;
                    tx.write(32, i)?;
                    tx.write(48, i)
                });
            }
            stop_w.store(1, Ordering::Release);
            assert!(t.stats().sw_commits > 0);
        });
        for _ in 0..2 {
            let br = b.clone();
            let stop_r = &stop;
            s.spawn(move |_| {
                let mut t = br.register_thread();
                while stop_r.load(Ordering::Acquire) == 0 {
                    let mut vals = [0u64; 4];
                    t.exec(TxKind::ReadOnly, &mut |tx| {
                        for (k, v) in vals.iter_mut().enumerate() {
                            *v = tx.read(k as u64 * 16)?;
                        }
                        Ok(())
                    });
                    assert!(
                        vals.iter().all(|v| *v == vals[0]),
                        "torn software commit observed: {vals:?}"
                    );
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn user_abort_works_on_software_path() {
    let b = SiHtm::new(
        HtmConfig { cores: 1, smt: 1, tmcam_lines: 2, ..HtmConfig::default() },
        256,
        config_with_sw(),
    );
    let mut t = b.register_thread();
    let out = t.exec(TxKind::Update, &mut |tx| {
        for i in 0..8u64 {
            tx.write(i * 16, 5)?;
        }
        Err(tm_api::Abort::User)
    });
    assert_eq!(out, Outcome::UserAborted);
    for i in 0..8u64 {
        assert_eq!(b.memory().load(i * 16), 0, "software-path rollback leaked");
    }
}
