//! Tests of the §6 "batching alternative": several update bodies executed
//! inside one ROT with a single safety wait.

use htm_sim::HtmConfig;
use si_htm::{SiHtm, SiHtmConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use tm_api::{Abort, Outcome, TmBackend, TmThread, Tx, TxKind};

#[test]
fn batch_commits_all_bodies_atomically() {
    let b = SiHtm::new(HtmConfig::small(), 256, SiHtmConfig::default());
    let mut t = b.register_thread();
    let mut b0 = |tx: &mut dyn Tx| tx.write(0, 1);
    let mut b1 = |tx: &mut dyn Tx| tx.write(16, 2);
    let mut b2 = |tx: &mut dyn Tx| {
        let a = tx.read(0)?;
        let c = tx.read(16)?;
        tx.write(32, a + c) // batched bodies see earlier bodies' writes
    };
    let out = t.exec_update_batch(&mut [&mut b0, &mut b1, &mut b2]);
    assert_eq!(out, Outcome::Committed);
    assert_eq!(b.memory().load(0), 1);
    assert_eq!(b.memory().load(16), 2);
    assert_eq!(b.memory().load(32), 3);
    assert_eq!(t.stats().commits, 1, "one hardware commit for the whole batch");
}

#[test]
fn empty_batch_is_a_noop_commit() {
    let b = SiHtm::new(HtmConfig::small(), 256, SiHtmConfig::default());
    let mut t = b.register_thread();
    assert_eq!(t.exec_update_batch(&mut []), Outcome::Committed);
    assert_eq!(t.stats().commits, 0);
}

#[test]
fn user_abort_rolls_back_the_whole_batch() {
    let b = SiHtm::new(HtmConfig::small(), 256, SiHtmConfig::default());
    let mut t = b.register_thread();
    let mut b0 = |tx: &mut dyn Tx| tx.write(0, 9);
    let mut b1 = |_tx: &mut dyn Tx| Err(Abort::User);
    let out = t.exec_update_batch(&mut [&mut b0, &mut b1]);
    assert_eq!(out, Outcome::UserAborted);
    assert_eq!(b.memory().load(0), 0, "earlier batched body must roll back too");
}

#[test]
fn batch_pays_one_safety_wait() {
    // With a concurrent long reader, a 4-body batch waits once while four
    // separate transactions would wait (up to) four times.
    let b = SiHtm::new(HtmConfig::small(), 1024, SiHtmConfig::default());
    let reader_active = AtomicBool::new(false);
    let writer_done = AtomicBool::new(false);

    crossbeam_utils::thread::scope(|s| {
        let bw = b.clone();
        let ra = &reader_active;
        let wd = &writer_done;
        s.spawn(move |_| {
            let mut t = bw.register_thread();
            while !ra.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            let mut b0 = |tx: &mut dyn Tx| tx.write(0, 1);
            let mut b1 = |tx: &mut dyn Tx| tx.write(16, 1);
            let mut b2 = |tx: &mut dyn Tx| tx.write(32, 1);
            let mut b3 = |tx: &mut dyn Tx| tx.write(48, 1);
            let out = t.exec_update_batch(&mut [&mut b0, &mut b1, &mut b2, &mut b3]);
            assert_eq!(out, Outcome::Committed);
            assert!(
                t.stats().quiesce_waits <= 1,
                "a batch must quiesce at most once, waited {} times",
                t.stats().quiesce_waits
            );
            wd.store(true, Ordering::Release);
        });

        let br = b.clone();
        let ra = &reader_active;
        s.spawn(move |_| {
            let mut t = br.register_thread();
            t.exec(TxKind::ReadOnly, &mut |tx| {
                let _ = tx.read(63 * 16)?; // disjoint line: no invalidation
                ra.store(true, Ordering::Release);
                std::thread::sleep(std::time::Duration::from_millis(20));
                let _ = tx.read(63 * 16)?;
                Ok(())
            });
        });
    })
    .unwrap();

    for line in 0..4u64 {
        assert_eq!(b.memory().load(line * 16), 1);
    }
}

#[test]
fn batches_of_batches_preserve_counters() {
    // Concurrency smoke: two threads each run 100 batches of 3 increments
    // on a shared counter; 600 increments must land.
    let b = SiHtm::new(
        HtmConfig { cores: 2, smt: 2, ..HtmConfig::default() },
        256,
        SiHtmConfig::default(),
    );
    crossbeam_utils::thread::scope(|s| {
        for _ in 0..2 {
            let b = b.clone();
            s.spawn(move |_| {
                let mut t = b.register_thread();
                for _ in 0..100 {
                    let mut inc = |tx: &mut dyn Tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    };
                    let mut inc2 = |tx: &mut dyn Tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    };
                    let mut inc3 = |tx: &mut dyn Tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    };
                    let out = t.exec_update_batch(&mut [&mut inc, &mut inc2, &mut inc3]);
                    assert_eq!(out, Outcome::Committed);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(b.memory().load(0), 600);
}
