//! Integration tests of the quiescence machinery: the safety wait is
//! load-bearing (removing it breaks SI), the §6 "killing alternative"
//! bounds the wait, and the SGL drain excludes every hardware path.

use htm_sim::HtmConfig;
use si_htm::{SiHtm, SiHtmConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tm_api::{Outcome, RetryPolicy, TmBackend, TmThread, TxKind};

const X: u64 = 0;

fn spin_until(flag: &AtomicBool) {
    while !flag.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
}

/// Disabling the safety wait (the unsafe ablation) re-admits the paper's
/// Fig. 3 anomaly: a read-only transaction observes both the pre- and
/// post-commit values of a concurrent writer. This is the *negative
/// control* showing the quiescence actually does the isolating.
#[test]
fn without_quiescence_snapshots_break() {
    let b = SiHtm::new(
        HtmConfig::small(),
        256,
        SiHtmConfig { quiescence: false, ..SiHtmConfig::default() },
    );
    let reader_started = AtomicBool::new(false);
    let writer_committed = AtomicBool::new(false);
    let observed = std::sync::Mutex::new((u64::MAX, u64::MAX));

    crossbeam_utils::thread::scope(|s| {
        let bw = b.clone();
        let rs = &reader_started;
        let wc = &writer_committed;
        s.spawn(move |_| {
            let mut t = bw.register_thread();
            spin_until(rs);
            // With quiescence disabled this returns while the reader is
            // still mid-transaction.
            let out = t.exec(TxKind::Update, &mut |tx| tx.write(X, 1));
            assert_eq!(out, Outcome::Committed);
            wc.store(true, Ordering::Release);
        });

        let br = b.clone();
        let rs = &reader_started;
        let wc = &writer_committed;
        let observed = &observed;
        s.spawn(move |_| {
            let mut t = br.register_thread();
            t.exec(TxKind::ReadOnly, &mut |tx| {
                let first = tx.read(X)?;
                rs.store(true, Ordering::Release);
                spin_until(wc); // the writer commits *inside* our lifetime
                let second = tx.read(X)?;
                *observed.lock().unwrap() = (first, second);
                Ok(())
            });
        });
    })
    .unwrap();

    assert_eq!(
        *observed.lock().unwrap(),
        (0, 1),
        "the unsafe configuration must exhibit the Fig. 3 anomaly"
    );
}

/// The same schedule with quiescence enabled: the writer cannot return
/// until the reader finished, so the anomaly is impossible (the reader's
/// in-transaction wait must be bounded by something other than the commit,
/// hence a timeout in the schedule).
#[test]
fn with_quiescence_the_same_schedule_is_safe() {
    let b = SiHtm::new(HtmConfig::small(), 256, SiHtmConfig::default());
    let reader_started = AtomicBool::new(false);
    let observed = std::sync::Mutex::new((u64::MAX, u64::MAX));

    crossbeam_utils::thread::scope(|s| {
        let bw = b.clone();
        let rs = &reader_started;
        s.spawn(move |_| {
            let mut t = bw.register_thread();
            spin_until(rs);
            let out = t.exec(TxKind::Update, &mut |tx| tx.write(X, 1));
            assert_eq!(out, Outcome::Committed);
        });

        let br = b.clone();
        let rs = &reader_started;
        let observed = &observed;
        s.spawn(move |_| {
            let mut t = br.register_thread();
            t.exec(TxKind::ReadOnly, &mut |tx| {
                let first = tx.read(X)?;
                rs.store(true, Ordering::Release);
                // Give the writer ample time to *try* to commit.
                std::thread::sleep(std::time::Duration::from_millis(30));
                let second = tx.read(X)?;
                *observed.lock().unwrap() = (first, second);
                Ok(())
            });
        });
    })
    .unwrap();

    assert_eq!(
        *observed.lock().unwrap(),
        (0, 0),
        "with the safety wait the reader's snapshot must hold"
    );
    assert_eq!(b.memory().load(X), 1, "the writer committed after the reader");
}

/// §6 "killing alternative": a completed transaction stops waiting for a
/// straggler and kills it. The straggler's transaction aborts and retries;
/// the completed one commits promptly.
#[test]
fn killing_alternative_bounds_the_wait() {
    let b = SiHtm::new(
        HtmConfig::small(),
        256,
        SiHtmConfig { kill_after: Some(50), ..SiHtmConfig::default() },
    );
    let straggler_active = AtomicBool::new(false);
    let writer_committed = AtomicBool::new(false);
    let straggler_aborts = AtomicU64::new(0);

    crossbeam_utils::thread::scope(|s| {
        // The straggler: a long-running update transaction that only
        // finishes once the writer committed — an unbounded wait without
        // the killing alternative (the writer would wait for it, and it
        // waits for the writer: a schedule only kills can break).
        let bs = b.clone();
        let sa = &straggler_active;
        let wc = &writer_committed;
        let aborts = &straggler_aborts;
        s.spawn(move |_| {
            let mut t = bs.register_thread();
            let out = t.exec(TxKind::Update, &mut |tx| {
                tx.write(16, 1)?;
                sa.store(true, Ordering::Release);
                // Stay active until the writer gets through. The kill
                // surfaces as Err on the next read, the body propagates,
                // and the retry completes once the writer committed.
                while !wc.load(Ordering::Acquire) {
                    tx.read(32)?;
                    std::thread::yield_now();
                }
                Ok(())
            });
            assert_eq!(out, Outcome::Committed);
            aborts.store(t.stats().aborts(), Ordering::Release);
        });

        let bw = b.clone();
        let sa = &straggler_active;
        let wc = &writer_committed;
        s.spawn(move |_| {
            let mut t = bw.register_thread();
            spin_until(sa);
            let out = t.exec(TxKind::Update, &mut |tx| tx.write(X, 7));
            assert_eq!(out, Outcome::Committed);
            wc.store(true, Ordering::Release);
            assert!(t.stats().quiesce_waits >= 1, "the writer did wait first");
        });
    })
    .unwrap();

    assert!(
        straggler_aborts.load(Ordering::Acquire) >= 1,
        "the straggler must have been killed at least once"
    );
    assert_eq!(b.memory().load(X), 7);
    assert_eq!(b.memory().load(16), 1, "the straggler's retry committed");
}

/// The straggler's body above relies on reads returning `Err` after a
/// kill; the engine contract says the body must propagate. This variant
/// uses the normal propagation style and checks the deadlock-free outcome.
#[test]
fn killing_alternative_with_propagating_body() {
    let b = SiHtm::new(
        HtmConfig::small(),
        256,
        SiHtmConfig { kill_after: Some(50), ..SiHtmConfig::default() },
    );
    let straggler_active = AtomicBool::new(false);
    let writer_committed = AtomicBool::new(false);

    crossbeam_utils::thread::scope(|s| {
        let bs = b.clone();
        let sa = &straggler_active;
        let wc = &writer_committed;
        s.spawn(move |_| {
            let mut t = bs.register_thread();
            let out = t.exec(TxKind::Update, &mut |tx| {
                tx.write(16, 1)?;
                sa.store(true, Ordering::Release);
                while !wc.load(Ordering::Acquire) {
                    tx.read(32)?; // propagates the kill as Abort::Backend
                    std::thread::yield_now();
                }
                Ok(())
            });
            assert_eq!(out, Outcome::Committed);
        });

        let bw = b.clone();
        let sa = &straggler_active;
        let wc = &writer_committed;
        s.spawn(move |_| {
            let mut t = bw.register_thread();
            spin_until(sa);
            assert_eq!(t.exec(TxKind::Update, &mut |tx| tx.write(X, 7)), Outcome::Committed);
            wc.store(true, Ordering::Release);
        });
    })
    .unwrap();
    assert_eq!(b.memory().load(X), 7);
}

/// The SGL fall-back is mutually exclusive with every hardware path: while
/// a fallen-back transaction runs, nothing else commits, and afterwards
/// everything resumes. Forced by a zero-retry policy.
#[test]
fn sgl_drains_and_excludes() {
    let b = SiHtm::new(
        HtmConfig { cores: 2, smt: 4, ..HtmConfig::default() },
        256,
        SiHtmConfig {
            retry: RetryPolicy { budget: 1, capacity_cost: 1 },
            ..SiHtmConfig::default()
        },
    );
    // Heavy same-line contention with a 1-attempt budget: most update
    // transactions take the SGL; counter integrity proves exclusion.
    crossbeam_utils::thread::scope(|s| {
        for _ in 0..6 {
            let b = b.clone();
            s.spawn(move |_| {
                let mut t = b.register_thread();
                for _ in 0..200 {
                    tm_api::increment(&mut t, X);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(b.memory().load(X), 1200);
}

/// Read-only transactions never abort and never fall back, whatever the
/// contention (§3.3 + §4 point ii).
#[test]
fn read_only_transactions_never_abort() {
    let b = SiHtm::new(
        HtmConfig { cores: 2, smt: 4, ..HtmConfig::default() },
        1024,
        SiHtmConfig::default(),
    );
    let stop = AtomicBool::new(false);
    crossbeam_utils::thread::scope(|s| {
        let bw = b.clone();
        let stop_w = &stop;
        s.spawn(move |_| {
            let mut t = bw.register_thread();
            for _ in 0..500 {
                t.exec(TxKind::Update, &mut |tx| {
                    let v = tx.read(X)?;
                    tx.write(X, v + 1)
                });
            }
            stop_w.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            let br = b.clone();
            let stop_r = &stop;
            s.spawn(move |_| {
                let mut t = br.register_thread();
                while !stop_r.load(Ordering::Acquire) {
                    t.exec(TxKind::ReadOnly, &mut |tx| {
                        for line in 0..64u64 {
                            tx.read(line * 16)?;
                        }
                        Ok(())
                    });
                }
                assert_eq!(t.stats().aborts(), 0, "a read-only transaction aborted");
                assert_eq!(t.stats().sgl_commits, 0, "a read-only transaction fell back");
                assert_eq!(t.stats().ro_commits, t.stats().commits);
            });
        }
    })
    .unwrap();
}
