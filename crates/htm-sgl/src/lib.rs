//! # htm-sgl — the plain-HTM baseline ("HTM" in the paper's figures)
//!
//! The standard way to use best-effort HTM: every transaction (read-only or
//! not) runs as a *regular* hardware transaction — reads and writes both
//! tracked, serializable, and both counted against the TMCAM capacity —
//! with a single-global-lock fall-back taken after the retry budget is
//! exhausted.
//!
//! Unlike SI-HTM, this baseline can (and does) use **early lock
//! subscription**: the lock word lives in *transactional memory* and every
//! hardware transaction reads it right after `tbegin.`. Acquiring the lock
//! therefore aborts every subscribed transaction — these are precisely the
//! "non-transactional aborts" the paper's figures single out ("only
//! possible in HTM").
//!
//! ## Example
//!
//! ```
//! use htm_sgl::HtmSgl;
//! use tm_api::{TmBackend, TmThread, TxKind};
//!
//! let backend = HtmSgl::with_defaults(1024);
//! let mut t = backend.register_thread();
//! t.exec(TxKind::Update, &mut |tx| {
//!     let v = tx.read(0)?;
//!     tx.write(0, v + 1)
//! });
//! assert_eq!(backend.memory().load(0), 1);
//! ```

use crossbeam_utils::Backoff;
use htm_sim::util::IntMap;
use htm_sim::{AbortReason, Htm, HtmConfig, HtmThread, NonTxClass, TxMode};
use std::sync::Arc;
use tm_api::{
    policy::RetryState, Abort, BackoffPolicy, ContentionManager, Outcome, RetryPolicy, ThreadStats,
    TmBackend, TmThread, Tx, TxBody, TxKind,
};
use txmem::hooks::{self, Event};
use txmem::{round_up_to_line, Addr, TxMemory, WORDS_PER_LINE};

const SGL_FREE: u64 = 0;

/// Anti-convoy jitter ceiling after the lock frees up: the subscribed
/// transactions the acquisition killed all wake at once, and without
/// staggering they re-subscribe (or CAS the lock word) in lockstep.
const SGL_ADMISSION_JITTER_NS: u64 = 2_000;

/// Tunables of the baseline.
///
/// No watchdog knob here: the baseline has no quiescence or drain wait —
/// its only unbounded wait is on the subscribed lock word, whose holder
/// runs non-transactionally (and whose panic-time release is guaranteed by
/// `HtmSglThread`'s Drop).
#[derive(Debug, Clone, Default)]
pub struct HtmSglConfig {
    /// Hardware retry budget before falling back to the lock.
    pub retry: RetryPolicy,
    /// Randomized exponential backoff between hardware retries.
    pub backoff: BackoffPolicy,
}

struct Inner {
    htm: Arc<Htm>,
    /// Word address of the lock inside simulated memory (so that lock
    /// acquisition generates hardware conflicts on subscribers).
    sgl_addr: Addr,
    /// First word beyond the workload-visible region.
    user_words: usize,
    config: HtmSglConfig,
}

/// The HTM+SGL backend. Cheap to clone.
#[derive(Clone)]
pub struct HtmSgl {
    inner: Arc<Inner>,
}

impl HtmSgl {
    /// Build the baseline over a fresh machine with `memory_words` words of
    /// workload-visible memory (one extra cache line is appended to hold
    /// the subscribed lock word).
    pub fn new(htm_config: HtmConfig, memory_words: usize, config: HtmSglConfig) -> Self {
        let user_words = round_up_to_line(memory_words as u64) as usize;
        let htm = Htm::new(htm_config, user_words + WORDS_PER_LINE);
        let sgl_addr = user_words as Addr;
        HtmSgl { inner: Arc::new(Inner { htm, sgl_addr, user_words, config }) }
    }

    /// Default machine (10-core SMT-8) and default retry policy.
    pub fn with_defaults(memory_words: usize) -> Self {
        Self::new(HtmConfig::default(), memory_words, HtmSglConfig::default())
    }

    /// The underlying simulated machine.
    pub fn htm(&self) -> &Arc<Htm> {
        &self.inner.htm
    }

    /// Words of workload-visible memory.
    pub fn user_words(&self) -> usize {
        self.inner.user_words
    }
}

impl TmBackend for HtmSgl {
    type Thread = HtmSglThread;

    fn name(&self) -> &'static str {
        "HTM"
    }

    fn register_thread(&self) -> HtmSglThread {
        let thr = self.inner.htm.register_thread();
        let tid = thr.tid();
        let cm = ContentionManager::new(self.inner.config.backoff, 0x5617 ^ tid as u64);
        HtmSglThread { inner: Arc::clone(&self.inner), thr, tid, stats: ThreadStats::default(), cm }
    }

    fn memory(&self) -> &TxMemory {
        self.inner.htm.memory()
    }
}

impl std::fmt::Debug for HtmSgl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmSgl").field("config", &self.inner.config).finish()
    }
}

/// A worker thread of the HTM+SGL baseline.
pub struct HtmSglThread {
    inner: Arc<Inner>,
    thr: HtmThread,
    tid: usize,
    stats: ThreadStats,
    cm: ContentionManager,
}

impl HtmSglThread {
    fn sgl_locked(&self) -> bool {
        self.inner.htm.memory().load_acquire(self.inner.sgl_addr) != SGL_FREE
    }

    fn wait_sgl_free(&self) {
        let backoff = Backoff::new();
        while self.sgl_locked() {
            hooks::emit(Event::Poll);
            backoff.snooze();
            if backoff.is_completed() {
                std::thread::yield_now();
            }
        }
    }

    /// Hardware attempt: regular HTM transaction with early subscription.
    /// `Err(reason)` means the attempt aborted (engine already cleaned up);
    /// `Ok(None)` means the body requested a user abort.
    fn try_hw(&mut self, body: TxBody<'_>) -> Result<Option<()>, AbortReason> {
        self.wait_sgl_free();
        self.thr.begin(TxMode::Htm);
        // Early subscription: a transactional read of the lock word. If the
        // lock is taken we must not proceed — abort and wait.
        match self.thr.read(self.inner.sgl_addr) {
            Ok(SGL_FREE) => {}
            Ok(_locked) => {
                // Locked: self-abort. The wait-then-retry is part of the
                // subscription protocol and consumes no retry budget, as in
                // production HTM runtimes.
                self.thr.abort();
                return Err(AbortReason::Explicit);
            }
            Err(reason) => return Err(reason),
        }
        let (result, reason) = {
            let mut tx = HwTx { thr: &mut self.thr, reason: None };
            let r = body(&mut tx);
            (r, tx.reason)
        };
        match result {
            Ok(()) => self.thr.commit().map(Some),
            Err(Abort::Backend) => Err(reason.expect("backend abort without recorded reason")),
            Err(Abort::User) => {
                if self.thr.in_tx() {
                    self.thr.abort();
                }
                Ok(None)
            }
        }
    }

    /// The SGL fall-back: acquire the in-memory lock word (killing every
    /// subscribed transaction), run non-transactionally.
    fn exec_sgl(&mut self, body: TxBody<'_>) -> Outcome {
        let mem = self.inner.htm.memory();
        let lock_val = self.tid as u64 + 1;
        loop {
            self.wait_sgl_free();
            if self.cm.admission_jitter(SGL_ADMISSION_JITTER_NS) > 0 {
                self.stats.backoffs += 1;
            }
            if mem.compare_exchange(self.inner.sgl_addr, SGL_FREE, lock_val).is_ok() {
                break;
            }
        }
        self.stats.sgl_acquisitions += 1;
        self.thr.refresh_hooks();
        hooks::emit(Event::SglLock);
        // Deliver the subscription kills: rewrite the (already-owned) lock
        // word through the conflict-checked path, aborting every hardware
        // transaction that has the word in its read set.
        self.thr.write_notx(self.inner.sgl_addr, lock_val, NonTxClass::Sgl);
        let (result, wbuf) = {
            let mut tx = SglTx { thr: &mut self.thr, wbuf: IntMap::default() };
            let r = body(&mut tx);
            (r, tx.wbuf)
        };
        let outcome = match result {
            Ok(()) => {
                for (addr, val) in wbuf {
                    self.thr.write_notx(addr, val, NonTxClass::Sgl);
                }
                self.stats.commits += 1;
                self.stats.sgl_commits += 1;
                Outcome::Committed
            }
            Err(Abort::User) => {
                self.stats.user_aborts += 1;
                Outcome::UserAborted
            }
            Err(Abort::Backend) => unreachable!("the SGL path cannot incur backend aborts"),
        };
        mem.store_release(self.inner.sgl_addr, SGL_FREE);
        hooks::emit(Event::SglUnlock { committed: outcome == Outcome::Committed });
        outcome
    }
}

/// Panic safety: roll back the in-flight hardware transaction and release
/// the in-memory lock word if this thread holds it — otherwise a panic on
/// the SGL path would leave the word set forever and every subscriber (and
/// would-be acquirer) spinning on it.
impl Drop for HtmSglThread {
    fn drop(&mut self) {
        if self.thr.in_tx() {
            self.thr.abort();
        }
        let mem = self.inner.htm.memory();
        if mem.load_acquire(self.inner.sgl_addr) == self.tid as u64 + 1 {
            mem.store_release(self.inner.sgl_addr, SGL_FREE);
        }
    }
}

impl TmThread for HtmSglThread {
    fn exec(&mut self, _kind: TxKind, body: TxBody<'_>) -> Outcome {
        // Plain HTM has no read-only fast path: every transaction runs as a
        // regular hardware transaction.
        let policy = self.inner.config.retry;
        let mut retry = RetryState::new(&policy);
        self.cm.reset();
        loop {
            match self.try_hw(body) {
                Ok(Some(())) => {
                    self.stats.commits += 1;
                    return Outcome::Committed;
                }
                Ok(None) => {
                    self.stats.user_aborts += 1;
                    return Outcome::UserAborted;
                }
                Err(AbortReason::Explicit) => {
                    // Subscription saw the lock taken: wait, retry for
                    // free — but staggered, or the whole cohort the
                    // acquisition killed re-subscribes in lockstep and is
                    // killed again by the next holder.
                    if self.cm.admission_jitter(SGL_ADMISSION_JITTER_NS) > 0 {
                        self.stats.backoffs += 1;
                    }
                    continue;
                }
                Err(reason) => {
                    self.stats.record_abort(reason);
                    if !retry.on_abort(&policy, reason) {
                        return self.exec_sgl(body);
                    }
                    if self.cm.backoff(reason) > 0 {
                        self.stats.backoffs += 1;
                    }
                }
            }
        }
    }

    fn exec_escalated(&mut self, body: TxBody<'_>) -> Outcome {
        self.exec_sgl(body)
    }

    fn stats(&self) -> &ThreadStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = ThreadStats::default();
    }
}

/// Regular hardware-transaction access handle.
struct HwTx<'a> {
    thr: &'a mut HtmThread,
    reason: Option<AbortReason>,
}

impl Tx for HwTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        self.thr.read(addr).map_err(|r| {
            self.reason = Some(r);
            Abort::Backend
        })
    }

    fn write(&mut self, addr: Addr, val: u64) -> Result<(), Abort> {
        self.thr.write(addr, val).map_err(|r| {
            self.reason = Some(r);
            Abort::Backend
        })
    }
}

/// SGL-path access handle: exclusive, non-transactional, locally buffered.
struct SglTx<'a> {
    thr: &'a mut HtmThread,
    wbuf: IntMap<Addr, u64>,
}

impl Tx for SglTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        if let Some(v) = self.wbuf.get(&addr) {
            return Ok(*v);
        }
        Ok(self.thr.read_notx(addr, NonTxClass::Sgl))
    }

    fn write(&mut self, addr: Addr, val: u64) -> Result<(), Abort> {
        self.wbuf.insert(addr, val);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_commit() {
        let b = HtmSgl::with_defaults(1024);
        let mut t = b.register_thread();
        let out = t.exec(TxKind::Update, &mut |tx| {
            let v = tx.read(0)?;
            tx.write(0, v + 3)
        });
        assert_eq!(out, Outcome::Committed);
        assert_eq!(b.memory().load(0), 3);
        assert_eq!(t.stats().commits, 1);
    }

    #[test]
    fn reads_count_against_capacity_and_force_sgl() {
        // 8-line TMCAM; a transaction reading 20 lines must fall back.
        let b = HtmSgl::new(
            HtmConfig { cores: 1, smt: 2, tmcam_lines: 8, ..HtmConfig::default() },
            16 * 64,
            HtmSglConfig::default(),
        );
        let mut t = b.register_thread();
        let out = t.exec(TxKind::Update, &mut |tx| {
            let mut sum = 0;
            for i in 0..20u64 {
                sum += tx.read(i * 16)?;
            }
            tx.write(0, sum + 1)
        });
        assert_eq!(out, Outcome::Committed);
        assert!(t.stats().aborts_capacity > 0);
        assert_eq!(t.stats().sgl_commits, 1);
        assert_eq!(b.memory().load(0), 1);
    }

    #[test]
    fn read_only_transactions_also_capacity_bound() {
        // The defining weakness vs SI-HTM: RO transactions are ordinary
        // hardware transactions here.
        let b = HtmSgl::new(
            HtmConfig { cores: 1, smt: 2, tmcam_lines: 8, ..HtmConfig::default() },
            16 * 64,
            HtmSglConfig::default(),
        );
        let mut t = b.register_thread();
        let out = t.exec(TxKind::ReadOnly, &mut |tx| {
            for i in 0..20u64 {
                tx.read(i * 16)?;
            }
            Ok(())
        });
        assert_eq!(out, Outcome::Committed);
        assert!(t.stats().aborts_capacity > 0, "RO reads exhaust the TMCAM");
        assert_eq!(t.stats().sgl_commits, 1);
    }

    #[test]
    fn user_abort_discards_writes() {
        let b = HtmSgl::with_defaults(1024);
        let mut t = b.register_thread();
        let out = t.exec(TxKind::Update, &mut |tx| {
            tx.write(0, 9)?;
            Err(Abort::User)
        });
        assert_eq!(out, Outcome::UserAborted);
        assert_eq!(b.memory().load(0), 0);
    }

    #[test]
    fn sgl_acquisition_kills_subscribed_transactions() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let b = HtmSgl::new(
            HtmConfig { cores: 2, smt: 2, tmcam_lines: 4, ..HtmConfig::default() },
            16 * 64,
            HtmSglConfig {
                retry: RetryPolicy { budget: 2, capacity_cost: 2 },
                ..HtmSglConfig::default()
            },
        );
        let stop = AtomicBool::new(false);
        crossbeam_utils::thread::scope(|s| {
            // One thread hammers a large transaction that must take the SGL.
            let b1 = b.clone();
            let stop1 = &stop;
            s.spawn(move |_| {
                let mut t = b1.register_thread();
                for _ in 0..50 {
                    t.exec(TxKind::Update, &mut |tx| {
                        for i in 0..10u64 {
                            let v = tx.read(i * 16)?;
                            tx.write(i * 16, v + 1)?;
                        }
                        Ok(())
                    });
                }
                stop1.store(true, Ordering::Relaxed);
                assert!(t.stats().sgl_acquisitions > 0);
            });
            // Another runs small transactions that subscribe to the lock.
            let b2 = b.clone();
            let stop2 = &stop;
            s.spawn(move |_| {
                let mut t = b2.register_thread();
                while !stop2.load(Ordering::Relaxed) {
                    t.exec(TxKind::Update, &mut |tx| {
                        let v = tx.read(20 * 16)?;
                        tx.write(20 * 16, v + 1)
                    });
                }
            });
        })
        .unwrap();
        // Counter integrity: all increments of the big transaction landed.
        let total: u64 = (0..10u64).map(|i| b.memory().load(i * 16)).sum();
        assert_eq!(total, 10 * 50);
    }

    #[test]
    fn concurrent_increments_serialize() {
        let b = HtmSgl::new(
            HtmConfig { cores: 2, smt: 2, ..HtmConfig::default() },
            256,
            HtmSglConfig::default(),
        );
        crossbeam_utils::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                s.spawn(move |_| {
                    let mut t = b.register_thread();
                    for _ in 0..250 {
                        tm_api::increment(&mut t, 0);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(b.memory().load(0), 1000);
    }
}
