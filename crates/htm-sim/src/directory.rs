//! The cache-line conflict directory.
//!
//! Stand-in for the coherence-protocol side of the TMCAM: for every cache
//! line currently tracked by some transaction it records the (at most one)
//! transactional writer and the set of HTM-mode transactional readers. All
//! simulated accesses consult the directory to detect conflicts; entries
//! are identified by `(thread, incarnation)` pairs so stale registrations
//! left behind by killed transactions can be garbage-collected lazily by
//! whoever stumbles over them.

use crate::util::IntMap;
use parking_lot::Mutex;
use txmem::Line;

/// Identity of a transaction registration: hardware thread + incarnation.
///
/// The incarnation is bumped on every `begin`, so an `Owner` can never be
/// confused with a later transaction of the same thread (no ABA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Owner {
    pub tid: u32,
    pub inc: u64,
}

/// Directory state for one cache line.
#[derive(Debug, Default)]
pub struct LineEntry {
    /// The transaction currently holding the line in its write set.
    pub writer: Option<Owner>,
    /// HTM-mode transactions holding the line in their tracked read sets.
    /// (ROT reads are untracked and never appear here — the defining
    /// property the paper exploits.)
    pub readers: Vec<Owner>,
}

impl LineEntry {
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.writer.is_none() && self.readers.is_empty()
    }
}

type Shard = Mutex<IntMap<Line, LineEntry>>;

/// Sharded line → [`LineEntry`] map.
pub struct Directory {
    shards: Box<[Shard]>,
    mask: u64,
}

impl Directory {
    pub fn new(shards: usize) -> Self {
        assert!(shards.is_power_of_two());
        let mut v: Vec<Shard> = Vec::with_capacity(shards);
        v.resize_with(shards, || Mutex::new(IntMap::default()));
        Directory { shards: v.into_boxed_slice(), mask: shards as u64 - 1 }
    }

    #[inline]
    fn shard(&self, line: Line) -> &Shard {
        // Fibonacci spreading so consecutive lines land on distinct shards.
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// Run `f` on the line's entry under the shard lock. A missing entry is
    /// materialised as an empty one for `f`, and entries left empty are
    /// removed afterwards, so the map only holds lines with live
    /// registrations.
    #[inline]
    pub fn with<R>(&self, line: Line, f: impl FnOnce(&mut LineEntry) -> R) -> R {
        let mut map = self.shard(line).lock();
        match map.entry(line) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let r = f(e.get_mut());
                if e.get().is_empty() {
                    e.remove();
                }
                r
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let mut entry = LineEntry::default();
                let r = f(&mut entry);
                if !entry.is_empty() {
                    v.insert(entry);
                }
                r
            }
        }
    }

    /// Peek at a line without materialising an entry (tests/metrics only).
    pub fn inspect<R>(&self, line: Line, f: impl FnOnce(Option<&LineEntry>) -> R) -> R {
        let map = self.shard(line).lock();
        f(map.get(&line))
    }

    /// Remove `owner`'s writer registration on `line`, if still present.
    pub fn remove_writer(&self, line: Line, owner: Owner) {
        self.with(line, |e| {
            if e.writer == Some(owner) {
                e.writer = None;
            }
        });
    }

    /// Remove `owner`'s reader registration on `line`, if still present.
    pub fn remove_reader(&self, line: Line, owner: Owner) {
        self.with(line, |e| {
            if let Some(pos) = e.readers.iter().position(|r| *r == owner) {
                e.readers.swap_remove(pos);
            }
        });
    }

    /// Total number of lines with live registrations (tests/metrics only).
    pub fn tracked_lines(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const O1: Owner = Owner { tid: 1, inc: 10 };
    const O2: Owner = Owner { tid: 2, inc: 20 };

    #[test]
    fn empty_entries_are_not_retained() {
        let d = Directory::new(4);
        d.with(7, |e| assert!(e.is_empty()));
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn registrations_persist_until_removed() {
        let d = Directory::new(4);
        d.with(7, |e| e.writer = Some(O1));
        d.with(7, |e| e.readers.push(O2));
        assert_eq!(d.tracked_lines(), 1);
        d.inspect(7, |e| {
            let e = e.unwrap();
            assert_eq!(e.writer, Some(O1));
            assert_eq!(e.readers, vec![O2]);
        });
        d.remove_writer(7, O1);
        d.inspect(7, |e| assert!(e.unwrap().writer.is_none()));
        d.remove_reader(7, O2);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn removal_checks_owner_identity() {
        let d = Directory::new(4);
        d.with(3, |e| e.writer = Some(O1));
        // A different incarnation of the same thread must not remove it.
        d.remove_writer(3, Owner { tid: 1, inc: 11 });
        d.inspect(3, |e| assert_eq!(e.unwrap().writer, Some(O1)));
        d.remove_writer(3, O1);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn lines_shard_independently() {
        let d = Directory::new(8);
        for line in 0..100 {
            d.with(line, |e| e.writer = Some(O1));
        }
        assert_eq!(d.tracked_lines(), 100);
        for line in 0..100 {
            d.remove_writer(line, O1);
        }
        assert_eq!(d.tracked_lines(), 0);
    }
}
