//! The cache-line conflict directory.
//!
//! Stand-in for the coherence-protocol side of the TMCAM: for every cache
//! line currently tracked by some transaction it records the (at most one)
//! transactional writer and the set of HTM-mode transactional readers. All
//! simulated accesses consult the directory to detect conflicts; entries
//! are identified by `(thread, incarnation)` pairs so stale registrations
//! left behind by killed transactions can be garbage-collected lazily by
//! whoever stumbles over them.
//!
//! ## Two implementations
//!
//! The default [`LockFreeDir`] is a pair of fixed-capacity arrays indexed
//! directly by cache-line id: a **dense array of packed `AtomicU64`
//! ownership words** (the writer registrations, one CAS to publish), and a
//! parallel array of reader slots — an inline first-reader word plus a
//! spinlocked overflow vector that only multi-reader lines ever touch. The
//! split matters: the read-side fast path ("does this line have a writer?")
//! touches only the 8-byte-per-line writer array, so even on large
//! simulated memories the hot structure stays cache-resident; the wider
//! reader slots are only dereferenced by tracked-reader registration and
//! by write-path scans. The uncontended access path is therefore one or
//! two atomic operations with no locking — this is what every simulated
//! memory access pays, so it dominates the whole simulator's profile.
//! Identity indexing needs no probing because line ids are dense and
//! bounded by the memory size (`txmem` panics on out-of-range addresses),
//! so `capacity == memory lines` always covers every possible key.
//!
//! The [`LockedDir`] retains the original mutex-sharded hash-map design and
//! exists for the ablation benches (`DirectoryKind::Locked`), so the cost of
//! the locked directory can be measured against the lock-free one in a
//! single build. Both sit behind the enum-dispatched [`Directory`] facade;
//! see DESIGN.md ("Lock-free conflict directory") for the full protocol and
//! memory-ordering argument.

use crate::config::DirectoryKind;
use crate::util::IntMap;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use txmem::Line;

/// Identity of a transaction registration: hardware thread + incarnation.
///
/// The incarnation is bumped on every `begin`, so an `Owner` can never be
/// confused with a later transaction of the same thread (no ABA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Owner {
    pub tid: u32,
    pub inc: u64,
}

/// Bits of the packed ownership word reserved for `tid + 1` (0 = vacant).
const TID_BITS: u64 = 16;

impl Owner {
    /// Pack into an ownership word: `(inc << 16) | (tid + 1)`; 0 is vacant.
    #[inline]
    fn pack(self) -> u64 {
        debug_assert!((self.tid as u64) < (1 << TID_BITS) - 1, "tid overflows packed word");
        debug_assert!(self.inc < 1 << (64 - TID_BITS), "incarnation overflows packed word");
        (self.inc << TID_BITS) | (self.tid as u64 + 1)
    }

    /// Unpack an ownership word; `None` when vacant.
    #[inline]
    fn unpack(word: u64) -> Option<Owner> {
        let tid_plus_1 = word & ((1 << TID_BITS) - 1);
        if tid_plus_1 == 0 {
            None
        } else {
            Some(Owner { tid: (tid_plus_1 - 1) as u32, inc: word >> TID_BITS })
        }
    }
}

/// Per-line tracked-reader slot of the lock-free variant.
///
/// `reader0` holds a packed [`Owner`] word (0 = vacant). Lines with at
/// most one concurrent tracked reader — the overwhelmingly common case,
/// since HTM-mode tracked readers are rare under SI-HTM — never touch the
/// spinlocked overflow sidecar; `extra_count` lets scans skip it without
/// taking the lock.
struct ReaderSlot {
    reader0: AtomicU64,
    extra_count: AtomicU64,
    extra_lock: AtomicBool,
    extra: UnsafeCell<Vec<u64>>,
}

// `extra` is only touched while `extra_lock` is held (see `with_extra`).
unsafe impl Sync for ReaderSlot {}

impl ReaderSlot {
    fn new() -> ReaderSlot {
        ReaderSlot {
            reader0: AtomicU64::new(0),
            extra_count: AtomicU64::new(0),
            extra_lock: AtomicBool::new(false),
            extra: UnsafeCell::new(Vec::new()),
        }
    }

    /// Run `f` on the overflow vector under the slot spinlock.
    fn with_extra<R>(&self, f: impl FnOnce(&mut Vec<u64>) -> R) -> R {
        crate::util::spin_wait(|| {
            self.extra_lock
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        });
        // Safety: the spinlock above gives exclusive access.
        let r = f(unsafe { &mut *self.extra.get() });
        self.extra_lock.store(false, Ordering::Release);
        r
    }

    fn is_empty(&self) -> bool {
        self.reader0.load(Ordering::SeqCst) == 0 && self.extra_count.load(Ordering::SeqCst) == 0
    }
}

/// Lock-free line-ownership table: a dense writer-word array plus a
/// parallel reader-slot array, both indexed by cache-line id.
pub struct LockFreeDir {
    writers: Box<[AtomicU64]>,
    readers: Box<[ReaderSlot]>,
}

impl LockFreeDir {
    pub fn new(lines: usize) -> Self {
        let mut w = Vec::with_capacity(lines);
        w.resize_with(lines, || AtomicU64::new(0));
        let mut r = Vec::with_capacity(lines);
        r.resize_with(lines, ReaderSlot::new);
        LockFreeDir { writers: w.into_boxed_slice(), readers: r.into_boxed_slice() }
    }

    #[inline]
    fn writer(&self, line: Line) -> Option<Owner> {
        Owner::unpack(self.writers[line as usize].load(Ordering::SeqCst))
    }

    #[inline]
    fn try_claim_writer(&self, line: Line, me: Owner) -> Result<(), Owner> {
        match self.writers[line as usize].compare_exchange(
            0,
            me.pack(),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => Ok(()),
            Err(cur) => Err(Owner::unpack(cur).expect("CAS failed against vacant word")),
        }
    }

    #[inline]
    fn clear_writer_if(&self, line: Line, owner: Owner) -> bool {
        self.writers[line as usize]
            .compare_exchange(owner.pack(), 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn register_reader(&self, line: Line, me: Owner) {
        let slot = &self.readers[line as usize];
        let word = me.pack();
        // Inline fast path: claim the first-reader word with one CAS.
        match slot.reader0.compare_exchange(0, word, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return,
            Err(cur) if cur == word => return, // already registered
            Err(_) => {}
        }
        slot.with_extra(|v| {
            if !v.contains(&word) {
                v.push(word);
                // The count is bumped while the lock is held; its SeqCst RMW
                // is the registration's publication point for the Dekker
                // handshake with writers (see DESIGN.md).
                slot.extra_count.fetch_add(1, Ordering::SeqCst);
            }
        });
    }

    fn unregister_reader(&self, line: Line, owner: Owner) {
        let slot = &self.readers[line as usize];
        let word = owner.pack();
        if slot.reader0.compare_exchange(word, 0, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
            return;
        }
        if slot.extra_count.load(Ordering::SeqCst) == 0 {
            return; // someone else already removed it
        }
        slot.with_extra(|v| {
            if let Some(pos) = v.iter().position(|w| *w == word) {
                v.swap_remove(pos);
                slot.extra_count.fetch_sub(1, Ordering::SeqCst);
            }
        });
    }

    fn readers_into(&self, line: Line, out: &mut Vec<Owner>) {
        out.clear();
        let slot = &self.readers[line as usize];
        if let Some(r) = Owner::unpack(slot.reader0.load(Ordering::SeqCst)) {
            out.push(r);
        }
        if slot.extra_count.load(Ordering::SeqCst) > 0 {
            slot.with_extra(|v| out.extend(v.iter().filter_map(|w| Owner::unpack(*w))));
        }
    }

    fn tracked_lines(&self) -> usize {
        self.writers
            .iter()
            .zip(self.readers.iter())
            .filter(|(w, r)| w.load(Ordering::SeqCst) != 0 || !r.is_empty())
            .count()
    }
}

/// Directory state for one cache line of the locked variant.
#[derive(Debug, Default)]
struct LineEntry {
    writer: Option<Owner>,
    readers: Vec<Owner>,
}

impl LineEntry {
    #[inline]
    fn is_empty(&self) -> bool {
        self.writer.is_none() && self.readers.is_empty()
    }
}

type Shard = Mutex<IntMap<Line, LineEntry>>;

/// The original mutex-sharded line → entry map, kept as the ablation
/// baseline (`DirectoryKind::Locked`). Every operation takes a shard lock.
pub struct LockedDir {
    shards: Box<[Shard]>,
    mask: u64,
}

impl LockedDir {
    pub fn new(shards: usize) -> Self {
        assert!(shards.is_power_of_two());
        let mut v: Vec<Shard> = Vec::with_capacity(shards);
        v.resize_with(shards, || Mutex::new(IntMap::default()));
        LockedDir { shards: v.into_boxed_slice(), mask: shards as u64 - 1 }
    }

    #[inline]
    fn shard(&self, line: Line) -> &Shard {
        // Fibonacci spreading so consecutive lines land on distinct shards.
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// Run `f` on the line's entry under the shard lock; entries left empty
    /// are removed so the map only holds lines with live registrations.
    fn with<R>(&self, line: Line, f: impl FnOnce(&mut LineEntry) -> R) -> R {
        let mut map = self.shard(line).lock();
        match map.entry(line) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let r = f(e.get_mut());
                if e.get().is_empty() {
                    e.remove();
                }
                r
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let mut entry = LineEntry::default();
                let r = f(&mut entry);
                if !entry.is_empty() {
                    v.insert(entry);
                }
                r
            }
        }
    }

    fn writer(&self, line: Line) -> Option<Owner> {
        self.shard(line).lock().get(&line).and_then(|e| e.writer)
    }

    fn try_claim_writer(&self, line: Line, me: Owner) -> Result<(), Owner> {
        self.with(line, |e| match e.writer {
            None => {
                e.writer = Some(me);
                Ok(())
            }
            Some(w) => Err(w),
        })
    }

    fn clear_writer_if(&self, line: Line, owner: Owner) -> bool {
        self.with(line, |e| {
            if e.writer == Some(owner) {
                e.writer = None;
                true
            } else {
                false
            }
        })
    }

    fn register_reader(&self, line: Line, me: Owner) {
        self.with(line, |e| {
            if !e.readers.contains(&me) {
                e.readers.push(me);
            }
        });
    }

    fn unregister_reader(&self, line: Line, owner: Owner) {
        self.with(line, |e| {
            if let Some(pos) = e.readers.iter().position(|r| *r == owner) {
                e.readers.swap_remove(pos);
            }
        });
    }

    fn readers_into(&self, line: Line, out: &mut Vec<Owner>) {
        out.clear();
        if let Some(e) = self.shard(line).lock().get(&line) {
            out.extend_from_slice(&e.readers);
        }
    }

    fn tracked_lines(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// The conflict directory behind its enum-dispatched facade.
///
/// All methods are a direct `match` on the variant, so the lock-free path
/// keeps its cost profile (the branch predicts perfectly — the variant
/// never changes after construction).
pub enum Directory {
    LockFree(LockFreeDir),
    Locked(LockedDir),
}

impl Directory {
    /// Build the directory for a machine with `lines` cache lines of
    /// simulated memory. `shards` only matters for the locked variant.
    pub fn new(kind: DirectoryKind, lines: usize, shards: usize) -> Self {
        match kind {
            DirectoryKind::LockFree => Directory::LockFree(LockFreeDir::new(lines)),
            DirectoryKind::Locked => Directory::Locked(LockedDir::new(shards)),
        }
    }

    /// Current writer registration on `line`, if any.
    #[inline]
    pub fn writer(&self, line: Line) -> Option<Owner> {
        match self {
            Directory::LockFree(d) => d.writer(line),
            Directory::Locked(d) => d.writer(line),
        }
    }

    /// Publish `me` as the line's writer iff the line has no writer.
    /// On failure, returns the current (possibly stale) registration.
    #[inline]
    pub fn try_claim_writer(&self, line: Line, me: Owner) -> Result<(), Owner> {
        match self {
            Directory::LockFree(d) => d.try_claim_writer(line, me),
            Directory::Locked(d) => d.try_claim_writer(line, me),
        }
    }

    /// Remove `owner`'s writer registration on `line`, if still present.
    /// Returns whether this call removed it.
    #[inline]
    pub fn clear_writer_if(&self, line: Line, owner: Owner) -> bool {
        match self {
            Directory::LockFree(d) => d.clear_writer_if(line, owner),
            Directory::Locked(d) => d.clear_writer_if(line, owner),
        }
    }

    /// Add `me` to the line's tracked-reader set (idempotent).
    #[inline]
    pub fn register_reader(&self, line: Line, me: Owner) {
        match self {
            Directory::LockFree(d) => d.register_reader(line, me),
            Directory::Locked(d) => d.register_reader(line, me),
        }
    }

    /// Remove `owner` from the line's tracked-reader set, if present.
    #[inline]
    pub fn unregister_reader(&self, line: Line, owner: Owner) {
        match self {
            Directory::LockFree(d) => d.unregister_reader(line, owner),
            Directory::Locked(d) => d.unregister_reader(line, owner),
        }
    }

    /// Snapshot the line's tracked readers into `out` (cleared first).
    #[inline]
    pub fn readers_into(&self, line: Line, out: &mut Vec<Owner>) {
        match self {
            Directory::LockFree(d) => d.readers_into(line, out),
            Directory::Locked(d) => d.readers_into(line, out),
        }
    }

    /// Total number of lines with live registrations (tests/metrics only).
    pub fn tracked_lines(&self) -> usize {
        match self {
            Directory::LockFree(d) => d.tracked_lines(),
            Directory::Locked(d) => d.tracked_lines(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const O1: Owner = Owner { tid: 1, inc: 10 };
    const O2: Owner = Owner { tid: 2, inc: 20 };

    fn both() -> [Directory; 2] {
        [
            Directory::new(DirectoryKind::LockFree, 128, 4),
            Directory::new(DirectoryKind::Locked, 128, 4),
        ]
    }

    #[test]
    fn owner_word_roundtrip() {
        for o in [O1, O2, Owner { tid: 0, inc: 0 }, Owner { tid: 79, inc: u32::MAX as u64 }] {
            assert_eq!(Owner::unpack(o.pack()), Some(o));
            assert_ne!(o.pack(), 0, "no owner packs to the vacant word");
        }
        assert_eq!(Owner::unpack(0), None);
    }

    #[test]
    fn empty_directory_tracks_nothing() {
        for d in both() {
            assert_eq!(d.writer(7), None);
            let mut readers = Vec::new();
            d.readers_into(7, &mut readers);
            assert!(readers.is_empty());
            assert_eq!(d.tracked_lines(), 0);
        }
    }

    #[test]
    fn registrations_persist_until_removed() {
        for d in both() {
            assert_eq!(d.try_claim_writer(7, O1), Ok(()));
            d.register_reader(7, O2);
            assert_eq!(d.tracked_lines(), 1);
            assert_eq!(d.writer(7), Some(O1));
            let mut readers = Vec::new();
            d.readers_into(7, &mut readers);
            assert_eq!(readers, vec![O2]);
            assert!(d.clear_writer_if(7, O1));
            assert_eq!(d.writer(7), None);
            d.unregister_reader(7, O2);
            assert_eq!(d.tracked_lines(), 0);
        }
    }

    #[test]
    fn claim_fails_against_existing_writer() {
        for d in both() {
            assert_eq!(d.try_claim_writer(3, O1), Ok(()));
            assert_eq!(d.try_claim_writer(3, O2), Err(O1));
            assert_eq!(d.writer(3), Some(O1));
        }
    }

    #[test]
    fn removal_checks_owner_identity() {
        for d in both() {
            assert_eq!(d.try_claim_writer(3, O1), Ok(()));
            // A different incarnation of the same thread must not remove it.
            assert!(!d.clear_writer_if(3, Owner { tid: 1, inc: 11 }));
            assert_eq!(d.writer(3), Some(O1));
            assert!(d.clear_writer_if(3, O1));
            assert_eq!(d.tracked_lines(), 0);
        }
    }

    #[test]
    fn reader_registration_is_idempotent() {
        for d in both() {
            d.register_reader(5, O1);
            d.register_reader(5, O1);
            let mut readers = Vec::new();
            d.readers_into(5, &mut readers);
            assert_eq!(readers, vec![O1]);
            d.unregister_reader(5, O1);
            assert_eq!(d.tracked_lines(), 0);
        }
    }

    #[test]
    fn many_readers_spill_into_overflow() {
        for d in both() {
            let owners: Vec<Owner> = (0..10).map(|t| Owner { tid: t, inc: t as u64 + 1 }).collect();
            for &o in &owners {
                d.register_reader(9, o);
            }
            let mut readers = Vec::new();
            d.readers_into(9, &mut readers);
            let mut got: Vec<u32> = readers.iter().map(|o| o.tid).collect();
            got.sort_unstable();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
            assert_eq!(d.tracked_lines(), 1);
            for &o in &owners {
                d.unregister_reader(9, o);
            }
            assert_eq!(d.tracked_lines(), 0);
        }
    }

    #[test]
    fn lines_are_independent() {
        for d in both() {
            for line in 0..100 {
                assert_eq!(d.try_claim_writer(line, O1), Ok(()));
            }
            assert_eq!(d.tracked_lines(), 100);
            for line in 0..100 {
                assert!(d.clear_writer_if(line, O1));
            }
            assert_eq!(d.tracked_lines(), 0);
        }
    }

    #[test]
    fn concurrent_claims_admit_exactly_one_writer() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let d = Directory::new(DirectoryKind::LockFree, 8, 4);
        let wins = AtomicUsize::new(0);
        crossbeam_utils::thread::scope(|s| {
            for t in 0..4u32 {
                let d = &d;
                let wins = &wins;
                s.spawn(move |_| {
                    if d.try_claim_writer(0, Owner { tid: t, inc: 1 }).is_ok() {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(wins.load(Ordering::Relaxed), 1);
        assert!(d.writer(0).is_some());
    }
}
