//! Machine configuration: virtual topology and capacity parameters.

/// Which conflict-directory implementation backs the machine.
///
/// The lock-free ownership table is the production choice; the locked
/// sharded map is kept as an ablation baseline so a single bench run can
/// measure the fast-path win (see DESIGN.md, "Lock-free conflict
/// directory").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectoryKind {
    /// Open-addressed array of packed `AtomicU64` ownership words; the
    /// uncontended read/write fast path performs no locking.
    #[default]
    LockFree,
    /// The original mutex-sharded `IntMap<Line, LineEntry>`.
    Locked,
}

impl DirectoryKind {
    /// Parse the `HTM_SIM_DIR` spelling.
    pub fn parse(s: &str) -> Option<DirectoryKind> {
        match s {
            "lockfree" | "lock-free" => Some(DirectoryKind::LockFree),
            "locked" => Some(DirectoryKind::Locked),
            _ => None,
        }
    }
}

/// How hardware-thread ids map onto cores (which threads share a TMCAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinLayout {
    /// Round-robin across cores: SMT sharing only begins once every core
    /// already runs one thread — the pinning used by the paper's run
    /// scripts, and the default.
    #[default]
    Scatter,
    /// Fill each core's SMT ways before moving to the next core:
    /// maximises TMCAM sharing at low thread counts (the adversarial
    /// layout for capacity experiments).
    Pack,
}

impl PinLayout {
    /// Parse the `HTM_SIM_PIN` spelling.
    pub fn parse(s: &str) -> Option<PinLayout> {
        match s {
            "scatter" | "rr" => Some(PinLayout::Scatter),
            "pack" | "fill" => Some(PinLayout::Pack),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            PinLayout::Scatter => "scatter",
            PinLayout::Pack => "pack",
        }
    }
}

/// Configuration of the simulated POWER machine.
///
/// The defaults model the paper's testbed: one POWER8 8284-22A processor
/// with 10 cores, SMT-8 (80 hardware threads), an 8 KB TMCAM per core
/// (64 × 128-byte lines) shared among the core's SMT threads.
#[derive(Debug, Clone)]
pub struct HtmConfig {
    /// Number of physical cores.
    pub cores: usize,
    /// SMT ways per core (hardware threads per core).
    pub smt: usize,
    /// TMCAM capacity per core, in cache lines (8 KB / 128 B = 64).
    pub tmcam_lines: u64,
    /// Fraction of ROT reads that still consume a TMCAM entry.
    ///
    /// Paper footnote 1: "due to implementation-specific reasons, the TMCAM
    /// can also track a small fraction of reads in a ROT". `0.0` disables
    /// the effect (the paper's model), values in `(0, 1]` enable the
    /// ablation bench. Sampling is deterministic per cache line.
    pub rot_read_tracking: f64,
    /// Optional POWER9 L2 LVDIR read-tracking extension.
    pub lvdir: Option<LvdirConfig>,
    /// Cost-model compensation for untracked reads, in `spin_loop` hints.
    ///
    /// On real hardware a load costs the same whether or not the TMCAM
    /// tracks it; in the simulator a *tracked* read additionally pays
    /// registration and capacity accounting. Untracked reads (ROT reads,
    /// read-only fast path, suspended/SGL reads) spin this many hints so
    /// per-read costs stay uniform across modes — without it the simulator
    /// would overstate SI-HTM's advantage on small transactions (see
    /// DESIGN.md). Set to 0 for the raw-cost ablation.
    pub untracked_read_spin: u32,
    /// Which conflict-directory implementation to use.
    pub directory: DirectoryKind,
    /// How thread ids are pinned onto cores (TMCAM-sharing layout).
    pub pin: PinLayout,
    /// Number of conflict-directory shards (power of two). Only meaningful
    /// with [`DirectoryKind::Locked`]; the lock-free table ignores it.
    pub directory_shards: usize,
}

/// POWER9 L2 LVDIR: a 512 KB read-tracking directory shared between two
/// cores, usable by at most two threads at any given time (§2.2).
#[derive(Debug, Clone)]
pub struct LvdirConfig {
    /// Capacity in cache lines (512 KB / 128 B = 4096).
    pub lines: u64,
    /// Maximum concurrent transactions allowed to use one LVDIR.
    pub max_users: u32,
}

impl Default for LvdirConfig {
    fn default() -> Self {
        LvdirConfig { lines: 4096, max_users: 2 }
    }
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            cores: 10,
            smt: 8,
            tmcam_lines: 64,
            rot_read_tracking: 0.0,
            lvdir: None,
            untracked_read_spin: 3,
            directory: DirectoryKind::default(),
            pin: PinLayout::default(),
            directory_shards: 256,
        }
    }
}

impl HtmConfig {
    /// A small machine handy for unit tests: 2 cores, SMT-2.
    pub fn small() -> Self {
        HtmConfig { cores: 2, smt: 2, ..HtmConfig::default() }
    }

    /// The paper's POWER9 configuration: POWER8 topology plus the LVDIR.
    pub fn power9() -> Self {
        HtmConfig { lvdir: Some(LvdirConfig::default()), ..HtmConfig::default() }
    }

    /// Total hardware threads.
    pub fn max_threads(&self) -> usize {
        self.cores * self.smt
    }

    /// Virtual core hosting hardware thread `tid`, per the configured
    /// [`PinLayout`].
    pub fn core_of(&self, tid: usize) -> usize {
        match self.pin {
            PinLayout::Scatter => tid % self.cores,
            PinLayout::Pack => (tid / self.smt) % self.cores,
        }
    }

    /// Apply environment overrides: `HTM_SIM_DIR=locked|lockfree` selects
    /// the conflict directory, `HTM_SIM_PIN=scatter|pack` the pinning
    /// layout. Unknown values panic (a silently ignored override is worse
    /// than a crash in a bench or stress run).
    pub fn apply_env(mut self) -> Self {
        if let Ok(v) = std::env::var("HTM_SIM_DIR") {
            self.directory = DirectoryKind::parse(&v)
                .unwrap_or_else(|| panic!("HTM_SIM_DIR: unknown directory kind '{v}'"));
        }
        if let Ok(v) = std::env::var("HTM_SIM_PIN") {
            self.pin = PinLayout::parse(&v)
                .unwrap_or_else(|| panic!("HTM_SIM_PIN: unknown pin layout '{v}'"));
        }
        self
    }

    /// Number of core pairs (for LVDIR sharing).
    pub fn core_pairs(&self) -> usize {
        self.cores.div_ceil(2)
    }

    pub(crate) fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(self.smt > 0, "need at least one SMT thread per core");
        assert!(self.tmcam_lines > 0, "TMCAM must have capacity");
        assert!(self.directory_shards.is_power_of_two(), "directory_shards must be a power of two");
        assert!(
            (0.0..=1.0).contains(&self.rot_read_tracking),
            "rot_read_tracking must be a fraction in [0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_models_the_paper_testbed() {
        let c = HtmConfig::default();
        assert_eq!(c.cores, 10);
        assert_eq!(c.smt, 8);
        assert_eq!(c.max_threads(), 80);
        assert_eq!(c.tmcam_lines, 64);
        assert!(c.lvdir.is_none());
    }

    #[test]
    fn core_pinning_is_round_robin() {
        let c = HtmConfig::default();
        assert_eq!(c.core_of(0), 0);
        assert_eq!(c.core_of(9), 9);
        assert_eq!(c.core_of(10), 0);
        assert_eq!(c.core_of(79), 9);
    }

    #[test]
    fn pack_pinning_fills_smt_ways_first() {
        let c = HtmConfig { pin: PinLayout::Pack, ..HtmConfig::default() };
        assert_eq!(c.core_of(0), 0);
        assert_eq!(c.core_of(7), 0); // SMT-8: first 8 threads share core 0
        assert_eq!(c.core_of(8), 1);
        assert_eq!(c.core_of(79), 9);
        assert_eq!(c.core_of(80), 0); // over-subscription wraps
    }

    #[test]
    fn env_spellings_parse() {
        assert_eq!(DirectoryKind::parse("locked"), Some(DirectoryKind::Locked));
        assert_eq!(DirectoryKind::parse("lockfree"), Some(DirectoryKind::LockFree));
        assert_eq!(DirectoryKind::parse("nope"), None);
        assert_eq!(PinLayout::parse("scatter"), Some(PinLayout::Scatter));
        assert_eq!(PinLayout::parse("pack"), Some(PinLayout::Pack));
        assert_eq!(PinLayout::parse("nope"), None);
    }

    #[test]
    fn power9_has_lvdir() {
        let c = HtmConfig::power9();
        let l = c.lvdir.as_ref().unwrap();
        assert_eq!(l.lines, 4096);
        assert_eq!(l.max_users, 2);
        assert_eq!(c.core_pairs(), 5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_shards_rejected() {
        HtmConfig { directory_shards: 3, ..HtmConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_rejected() {
        HtmConfig { rot_read_tracking: 1.5, ..HtmConfig::default() }.validate();
    }
}
