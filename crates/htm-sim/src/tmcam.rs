//! TMCAM and LVDIR capacity accounting.
//!
//! POWER8 keeps the read/write sets of a core's transactions in an 8 KB
//! content-addressable memory (TMCAM) attached to the L2: 64 entries of one
//! 128-byte cache line each, *shared by all SMT threads of the core*. When
//! the combined footprint of the transactions co-located on a core exceeds
//! 64 lines, the transaction requesting the 65th entry takes a capacity
//! abort. POWER9 adds the L2 LVDIR — a 512 KB read-tracking directory
//! shared between two cores, usable by at most two threads at a time.

use crate::config::HtmConfig;
use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};

struct LvdirState {
    users: AtomicU32,
    used: AtomicI64,
}

/// Per-core (and per-core-pair) capacity counters.
pub struct Cores {
    tmcam: Box<[CachePadded<AtomicI64>]>,
    tmcam_cap: i64,
    lvdir: Option<Box<[CachePadded<LvdirState>]>>,
    lvdir_cap: i64,
    lvdir_max_users: u32,
}

impl Cores {
    pub fn new(config: &HtmConfig) -> Self {
        let mut tmcam = Vec::with_capacity(config.cores);
        tmcam.resize_with(config.cores, || CachePadded::new(AtomicI64::new(0)));
        let (lvdir, lvdir_cap, lvdir_max_users) = match &config.lvdir {
            Some(l) => {
                let mut v = Vec::with_capacity(config.core_pairs());
                v.resize_with(config.core_pairs(), || {
                    CachePadded::new(LvdirState {
                        users: AtomicU32::new(0),
                        used: AtomicI64::new(0),
                    })
                });
                (Some(v.into_boxed_slice()), l.lines as i64, l.max_users)
            }
            None => (None, 0, 0),
        };
        Cores {
            tmcam: tmcam.into_boxed_slice(),
            tmcam_cap: config.tmcam_lines as i64,
            lvdir,
            lvdir_cap,
            lvdir_max_users,
        }
    }

    /// Reserve one TMCAM entry on `core`. `false` ⇒ capacity exhausted (the
    /// reservation is rolled back; the caller must take a capacity abort).
    #[inline]
    pub fn charge_tmcam(&self, core: usize) -> bool {
        let used = self.tmcam[core].fetch_add(1, Ordering::Relaxed) + 1;
        if used > self.tmcam_cap {
            self.tmcam[core].fetch_sub(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    /// Return `n` TMCAM entries on `core`.
    #[inline]
    pub fn release_tmcam(&self, core: usize, n: u64) {
        if n > 0 {
            let prev = self.tmcam[core].fetch_sub(n as i64, Ordering::Relaxed);
            debug_assert!(prev >= n as i64, "TMCAM accounting underflow");
        }
    }

    /// Current TMCAM occupancy of a core (tests/metrics).
    pub fn tmcam_used(&self, core: usize) -> i64 {
        self.tmcam[core].load(Ordering::Relaxed)
    }

    #[inline]
    fn lvdir_of(core: usize) -> usize {
        core / 2
    }

    /// Try to become an LVDIR user for `core`'s pair. `false` when the LVDIR
    /// is absent or its user slots (two, per §2.2) are taken — which is
    /// exactly why LVDIR cannot help SMT workloads.
    pub fn try_join_lvdir(&self, core: usize) -> bool {
        let Some(lv) = &self.lvdir else { return false };
        let s = &lv[Self::lvdir_of(core)];
        s.users
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |u| {
                (u < self.lvdir_max_users).then_some(u + 1)
            })
            .is_ok()
    }

    /// Release an LVDIR user slot and `held` tracked lines.
    pub fn leave_lvdir(&self, core: usize, held: u64) {
        let lv = self.lvdir.as_ref().expect("leave_lvdir without LVDIR");
        let s = &lv[Self::lvdir_of(core)];
        if held > 0 {
            s.used.fetch_sub(held as i64, Ordering::Relaxed);
        }
        let prev = s.users.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "LVDIR user underflow");
    }

    /// Reserve one LVDIR read-tracking entry.
    #[inline]
    pub fn charge_lvdir(&self, core: usize) -> bool {
        let lv = self.lvdir.as_ref().expect("charge_lvdir without LVDIR");
        let s = &lv[Self::lvdir_of(core)];
        let used = s.used.fetch_add(1, Ordering::Relaxed) + 1;
        if used > self.lvdir_cap {
            s.used.fetch_sub(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LvdirConfig;

    fn cfg(tmcam: u64) -> HtmConfig {
        HtmConfig { cores: 2, smt: 2, tmcam_lines: tmcam, ..HtmConfig::default() }
    }

    #[test]
    fn tmcam_charges_up_to_capacity() {
        let c = Cores::new(&cfg(3));
        assert!(c.charge_tmcam(0));
        assert!(c.charge_tmcam(0));
        assert!(c.charge_tmcam(0));
        assert!(!c.charge_tmcam(0), "4th entry must fail");
        // Failure must not leak an entry.
        assert_eq!(c.tmcam_used(0), 3);
        // The other core is independent.
        assert!(c.charge_tmcam(1));
        c.release_tmcam(0, 3);
        assert_eq!(c.tmcam_used(0), 0);
        assert!(c.charge_tmcam(0));
    }

    #[test]
    fn tmcam_is_shared_per_core_not_per_thread() {
        // Two "threads" charging the same core drain the same budget.
        let c = Cores::new(&cfg(4));
        for _ in 0..2 {
            assert!(c.charge_tmcam(0));
        }
        for _ in 0..2 {
            assert!(c.charge_tmcam(0));
        }
        assert!(!c.charge_tmcam(0));
    }

    #[test]
    fn lvdir_user_slots_are_limited() {
        let mut config = cfg(64);
        config.lvdir = Some(LvdirConfig { lines: 8, max_users: 2 });
        let c = Cores::new(&config);
        assert!(c.try_join_lvdir(0));
        assert!(c.try_join_lvdir(1)); // cores 0 and 1 share pair 0
        assert!(!c.try_join_lvdir(0), "third user must be refused");
        c.leave_lvdir(0, 0);
        assert!(c.try_join_lvdir(0));
    }

    #[test]
    fn lvdir_capacity_enforced() {
        let mut config = cfg(64);
        config.lvdir = Some(LvdirConfig { lines: 2, max_users: 2 });
        let c = Cores::new(&config);
        assert!(c.try_join_lvdir(0));
        assert!(c.charge_lvdir(0));
        assert!(c.charge_lvdir(0));
        assert!(!c.charge_lvdir(0));
        c.leave_lvdir(0, 2);
    }

    #[test]
    fn no_lvdir_means_no_join() {
        let c = Cores::new(&cfg(64));
        assert!(!c.try_join_lvdir(0));
    }
}
