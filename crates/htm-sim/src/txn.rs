//! The per-hardware-thread transaction engine: begin / read / write /
//! suspend / resume / commit / abort with P8-HTM conflict semantics.
//!
//! ## Conflict policy (paper §2.2)
//!
//! * a **read** (transactional or not) of a line transactionally written by
//!   another thread *kills the writer* and returns the old value; if the
//!   writer is mid-commit the reader stalls and then returns the new value;
//! * a **transactional write** to a line written by another active
//!   transaction kills the *requester* ("the last writer is killed");
//! * a **write** (transactional or not) to a line held in HTM-mode read
//!   sets kills those *readers*;
//! * ROT reads are untracked: they never appear in read sets, so
//!   write-after-read between ROTs goes undetected (Fig. 2A) while
//!   read-after-write still kills the writer (Fig. 2B).
//!
//! ## Kill protocol
//!
//! A kill is a single CAS on the victim's status word
//! (`Active → Aborted(reason)`). Victims observe their death at the next
//! simulated instruction (or at `resume()`/`commit()`) and then clean up
//! their own registrations; the killer only clears the one directory entry
//! it is looking at. Stale registrations (dead incarnations) are
//! garbage-collected by whoever encounters them. Transactional stores are
//! buffered privately and applied at commit, so a killed writer's effects
//! simply never reach memory — no rollback is needed, matching hardware
//! where the L2 discards transactional lines on abort.
//!
//! ## Lock-free conflict resolution
//!
//! Since the directory became a lock-free ownership table, conflict
//! resolution is no longer atomic per line; it is a small protocol over
//! single-word operations (full argument in DESIGN.md):
//!
//! * a tracked reader **registers first**, then resolves the line's writer —
//!   a concurrent writer either sees the registration in its post-claim
//!   scan, or the reader sees the claim (both operations are `SeqCst`
//!   RMW/load pairs, so one direction is guaranteed by the total order);
//! * a writer **claims the ownership word first** (one CAS), then kills the
//!   tracked readers it finds; readers that register after the scan observe
//!   the claim and kill the writer instead;
//! * an access that finds a *committing* conflicter stalls until that
//!   status word moves on, then re-examines the line — safe because a
//!   committing transaction never waits on anyone.

use crate::directory::Owner;
use crate::status::{AbortReason, NonTxClass, TxMode, TxState};
use crate::util::{spin_wait, IntMap};
use crate::Htm;
use std::sync::Arc;
use txmem::hooks::{self, Event, InjectPoint};
use txmem::{line_of, Addr, Line, TxMemory, VirtualClock};

/// Per-line tracking flags of the current transaction.
mod flags {
    /// Line is in the write set (buffered writes may exist).
    pub const WRITE: u8 = 1;
    /// Registered in the directory's tracked-reader list.
    pub const READ_REG: u8 = 2;
    /// Holds a TMCAM entry.
    pub const TMCAM: u8 = 4;
    /// Holds an LVDIR entry.
    pub const LVDIR: u8 = 8;
}

/// A registered hardware thread of the simulated machine. At most one
/// transaction is active per thread at a time (P8-HTM has no nesting beyond
/// flattening, which the paper does not use).
pub struct HtmThread {
    htm: Arc<Htm>,
    tid: usize,
    core: usize,
    inc: u64,
    mode: Option<TxMode>,
    suspended: bool,
    lines: IntMap<Line, u8>,
    wbuf: IntMap<Addr, u64>,
    tmcam_held: u64,
    lvdir_held: u64,
    lvdir_user: bool,
    unbounded: bool,
    /// `hooks::active()` cached at begin: gates the per-access hook calls
    /// so the disarmed fast path never touches the hook statics.
    hooked: bool,
    /// Reusable reader-snapshot buffer for the kill scans.
    scratch: Vec<Owner>,
}

impl HtmThread {
    pub(crate) fn new(htm: Arc<Htm>, tid: usize) -> Self {
        let core = htm.config().core_of(tid);
        HtmThread {
            htm,
            tid,
            core,
            inc: 0,
            mode: None,
            suspended: false,
            lines: IntMap::default(),
            wbuf: IntMap::default(),
            tmcam_held: 0,
            lvdir_held: 0,
            lvdir_user: false,
            unbounded: false,
            hooked: false,
            scratch: Vec::new(),
        }
    }

    /// Hardware-thread id.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Virtual core this hardware thread is pinned to.
    #[inline]
    pub fn core(&self) -> usize {
        self.core
    }

    /// The machine this thread belongs to.
    #[inline]
    pub fn htm(&self) -> &Arc<Htm> {
        &self.htm
    }

    /// Shared memory shortcut.
    #[inline]
    pub fn memory(&self) -> &TxMemory {
        self.htm.memory()
    }

    /// Virtual clock shortcut.
    #[inline]
    pub fn clock(&self) -> &VirtualClock {
        self.htm.clock()
    }

    #[inline]
    fn me(&self) -> Owner {
        Owner { tid: self.tid as u32, inc: self.inc }
    }

    /// True while a transaction is active (even if suspended or doomed).
    #[inline]
    pub fn in_tx(&self) -> bool {
        self.mode.is_some()
    }

    /// Mode of the active transaction.
    #[inline]
    pub fn mode(&self) -> Option<TxMode> {
        self.mode
    }

    /// True while inside a suspend/resume window.
    #[inline]
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Number of distinct cache lines in the current write set.
    pub fn write_set_lines(&self) -> usize {
        self.lines.values().filter(|f| **f & flags::WRITE != 0).count()
    }

    /// TMCAM entries currently held by this transaction.
    pub fn tmcam_footprint(&self) -> u64 {
        self.tmcam_held
    }

    /// Begin a transaction. `HTMBeginROT` is `begin(TxMode::Rot)`.
    ///
    /// Panics if a transaction is already active.
    pub fn begin(&mut self, mode: TxMode) {
        self.begin_opts(mode, false);
    }

    /// Begin a transaction *without capacity accounting*.
    ///
    /// This is not a hardware feature: it models a **software** transaction
    /// that participates in the same conflict protocol (the directory plays
    /// the role of a per-line software lock table) but tracks its sets in
    /// ordinary memory, hence without TMCAM bounds. SI-HTM's optional
    /// software-SI fall-back path (paper §6 future work) is built on it.
    pub fn begin_unbounded(&mut self, mode: TxMode) {
        self.begin_opts(mode, true);
    }

    fn begin_opts(&mut self, mode: TxMode, unbounded: bool) {
        assert!(self.mode.is_none(), "transaction already active on thread {}", self.tid);
        self.inc += 1;
        self.mode = Some(mode);
        self.suspended = false;
        self.lines.clear();
        self.wbuf.clear();
        self.tmcam_held = 0;
        self.lvdir_held = 0;
        self.unbounded = unbounded;
        // Only regular HTM transactions benefit from the LVDIR (it tracks
        // reads; ROT reads are untracked by construction).
        self.lvdir_user =
            !unbounded && mode == TxMode::Htm && self.htm.cores().try_join_lvdir(self.core);
        self.hooked = hooks::active();
        self.htm.slots().store(self.tid, self.inc, TxState::Active(mode));
        hooks::emit(Event::Begin { rot: mode == TxMode::Rot });
    }

    /// If the active transaction has been killed, report the reason
    /// (without cleaning up — the next operation or `resume`/`commit` will).
    pub fn doomed(&self) -> Option<AbortReason> {
        self.mode?;
        match self.htm.slots().load(self.tid) {
            (_, TxState::Aborted(r)) => Some(r),
            _ => None,
        }
    }

    /// Check own fate at the top of each simulated instruction.
    #[inline]
    fn check_self(&mut self) -> Result<(), AbortReason> {
        debug_assert!(self.mode.is_some(), "transactional access outside a transaction");
        match self.htm.slots().load(self.tid) {
            (_, TxState::Aborted(r)) => {
                self.cleanup();
                hooks::emit(Event::Abort { reason: r.into() });
                Err(r)
            }
            _ => Ok(()),
        }
    }

    /// Per-access hook notification, gated on the flag cached at begin
    /// (one hot-flag test when nothing is listening).
    #[inline]
    fn emit_access(&self, ev: Event) {
        if self.hooked {
            hooks::emit(ev);
        }
    }

    /// Per-access fault-injection query, gated like [`Self::emit_access`].
    #[inline]
    fn inject_at(&self, point: InjectPoint) -> Option<hooks::AbortCode> {
        if self.hooked {
            hooks::inject(point)
        } else {
            None
        }
    }

    /// Cost-model compensation: untracked reads spin briefly so they cost
    /// as much as tracked reads do in this simulator (on hardware both are
    /// plain loads; see `HtmConfig::untracked_read_spin`).
    #[inline]
    fn compensate_untracked_read(&self) {
        for _ in 0..self.htm.config().untracked_read_spin {
            std::hint::spin_loop();
        }
    }

    /// Deterministic per-line sampling for the "small fraction of ROT reads
    /// tracked by the TMCAM" knob (paper footnote 1).
    #[inline]
    fn rot_read_sampled(&self, line: Line) -> bool {
        let f = self.htm.config().rot_read_tracking;
        if f <= 0.0 {
            return false;
        }
        let h = line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        (h as f64 / (1u64 << 24) as f64) < f
    }

    /// Charge one capacity entry for `line` with the appropriate structure.
    /// `for_write` forces a TMCAM entry (the LVDIR only tracks reads).
    fn charge_capacity(&mut self, line: Line, for_write: bool) -> Result<(), ()> {
        if self.unbounded {
            // Software transaction: sets tracked in ordinary memory.
            self.lines.entry(line).or_insert(0);
            return Ok(());
        }
        let entry = self.lines.entry(line).or_insert(0);
        if for_write {
            if *entry & flags::TMCAM != 0 {
                return Ok(());
            }
            if self.htm.cores().charge_tmcam(self.core) {
                *entry |= flags::TMCAM;
                self.tmcam_held += 1;
                Ok(())
            } else {
                Err(())
            }
        } else {
            if *entry & (flags::TMCAM | flags::LVDIR) != 0 {
                return Ok(());
            }
            if self.lvdir_user {
                if self.htm.cores().charge_lvdir(self.core) {
                    *entry |= flags::LVDIR;
                    self.lvdir_held += 1;
                    return Ok(());
                }
                return Err(());
            }
            if self.htm.cores().charge_tmcam(self.core) {
                *entry |= flags::TMCAM;
                self.tmcam_held += 1;
                Ok(())
            } else {
                Err(())
            }
        }
    }

    /// Stall until `(victim)`'s status word leaves `Committing` (coherence
    /// serialisation with a mid-commit transaction). Safe to wait on: a
    /// committing transaction never waits on anyone, so this cannot
    /// deadlock — even when the caller itself holds a writer claim.
    fn stall_on_commit(&self, victim: Owner) {
        let slots = self.htm.slots();
        spin_wait(|| {
            !matches!(slots.load(victim.tid as usize),
                      (inc, TxState::Committing) if inc == victim.inc)
        });
    }

    /// Resolve the line's transactional writer before an access that is
    /// entitled to kill it: kill it (or GC a stale registration), stalling
    /// while it is mid-commit. `spare` protects the caller's own live
    /// registration. On return the line either has no writer or `spare`.
    fn resolve_writer(&self, line: Line, spare: Option<Owner>, reason: AbortReason) {
        loop {
            let Some(w) = self.htm.directory().writer(line) else { return };
            if Some(w) == spare {
                return;
            }
            match self.htm.slots().try_kill(w.tid as usize, w.inc, reason) {
                Ok(()) => {
                    // Killed (or already dead): its buffered writes die with
                    // it; clear the registration and read the old value.
                    self.htm.directory().clear_writer_if(line, w);
                    return;
                }
                Err(TxState::Committing) => self.stall_on_commit(w),
                Err(_) => {
                    // Stale registration: GC it, then re-examine the line.
                    self.htm.directory().clear_writer_if(line, w);
                }
            }
        }
    }

    /// Kill every tracked reader of the line except `spare`, stalling on
    /// mid-commit readers. Readers that register concurrently after the
    /// final scan observe the caller's state (writer claim or stored value)
    /// through the registration handshake — see the module docs.
    fn kill_readers(&mut self, line: Line, spare: Option<Owner>, reason: AbortReason) {
        let mut buf = std::mem::take(&mut self.scratch);
        loop {
            self.htm.directory().readers_into(line, &mut buf);
            let mut committing = None;
            for &r in buf.iter() {
                if Some(r) == spare {
                    continue;
                }
                match self.htm.slots().try_kill(r.tid as usize, r.inc, reason) {
                    Err(TxState::Committing) => committing = Some(r),
                    // Killed, already dead, or stale: drop the registration.
                    Ok(()) | Err(_) => self.htm.directory().unregister_reader(line, r),
                }
            }
            match committing {
                None => break,
                Some(r) => self.stall_on_commit(r),
            }
        }
        self.scratch = buf;
    }

    /// Transactional read (`ld` inside a transaction). When suspended, the
    /// access is performed non-transactionally, as the hardware does.
    pub fn read(&mut self, addr: Addr) -> Result<u64, AbortReason> {
        if self.suspended {
            return Ok(self.read_notx(addr, NonTxClass::Data));
        }
        self.check_self()?;
        if let Some(code) = self.inject_at(InjectPoint::Access) {
            return Err(self.self_abort(code.into()));
        }
        let mode = self.mode.expect("read outside transaction");
        let line = line_of(addr);

        // Fast paths on lines we already own or track: no directory access
        // at all (and in particular no lock and no shared-memory RMW).
        if let Some(&f) = self.lines.get(&line) {
            if f & flags::WRITE != 0 {
                // Our own write set: we see our buffered stores.
                let val = self.wbuf.get(&addr).copied().unwrap_or_else(|| self.memory().load(addr));
                self.emit_access(Event::Read { addr, val, tx: true });
                return Ok(val);
            }
            if f & flags::READ_REG != 0 {
                // Already a tracked reader: any conflicting writer would
                // have had to kill us first, so plain memory is consistent
                // (a kill that raced us is observed at the next access).
                let val = self.memory().load(addr);
                self.emit_access(Event::Read { addr, val, tx: true });
                return Ok(val);
            }
        }

        let tracked = match mode {
            TxMode::Htm => true,
            TxMode::Rot => self.rot_read_sampled(line),
        };
        if tracked && self.charge_capacity(line, false).is_err() {
            return Err(self.self_abort(AbortReason::Capacity));
        }

        let me = self.me();
        if tracked {
            // Register FIRST, then resolve the writer: a concurrent writer
            // either sees this registration in its post-claim scan, or we
            // see its claim below (the SeqCst Dekker handshake, DESIGN.md).
            self.htm.directory().register_reader(line, me);
            self.resolve_writer(line, Some(me), AbortReason::Conflict);
            *self.lines.entry(line).or_insert(0) |= flags::READ_REG;
        } else {
            // Untracked (ROT) read: kill the writer, leave no trace.
            self.resolve_writer(line, Some(me), AbortReason::Conflict);
            self.compensate_untracked_read();
        }
        let val = self.memory().load(addr);
        self.emit_access(Event::Read { addr, val, tx: true });
        Ok(val)
    }

    /// Transactional write (`st` inside a transaction). Buffered until
    /// commit. When suspended, performed non-transactionally.
    pub fn write(&mut self, addr: Addr, val: u64) -> Result<(), AbortReason> {
        if self.suspended {
            self.write_notx(addr, val, NonTxClass::Data);
            return Ok(());
        }
        self.check_self()?;
        if let Some(code) = self.inject_at(InjectPoint::Access) {
            return Err(self.self_abort(code.into()));
        }
        debug_assert!(self.mode.is_some(), "write outside transaction");
        let line = line_of(addr);

        // Owned-line fast path: one private map probe, no shared state.
        if self.lines.get(&line).is_some_and(|f| f & flags::WRITE != 0) {
            self.wbuf.insert(addr, val);
            self.emit_access(Event::Write { addr, val, tx: true });
            return Ok(());
        }

        if self.charge_capacity(line, true).is_err() {
            return Err(self.self_abort(AbortReason::Capacity));
        }

        let me = self.me();
        // Claim the ownership word — a single CAS when the line is free.
        loop {
            match self.htm.directory().writer(line) {
                None => {
                    if self.htm.directory().try_claim_writer(line, me).is_ok() {
                        break;
                    }
                    // Lost the race; re-examine the new owner.
                }
                Some(w) if w == me => break,
                Some(w) => match self.htm.slots().load(w.tid as usize) {
                    (inc, TxState::Active(_)) if inc == w.inc => {
                        // Write-write conflict: "the last writer is killed"
                        // — that is us.
                        return Err(self.self_abort(AbortReason::Conflict));
                    }
                    (inc, TxState::Committing) if inc == w.inc => self.stall_on_commit(w),
                    _ => {
                        // Stale registration: GC and retry the claim.
                        self.htm.directory().clear_writer_if(line, w);
                    }
                },
            }
        }
        // With the claim published, kill every tracked reader of the line
        // (write-after-read is a conflict for regular HTM transactions).
        // Readers that register after this scan observe our claim and kill
        // us instead — either way the conflict is detected.
        self.kill_readers(line, Some(me), AbortReason::Conflict);

        *self.lines.entry(line).or_insert(0) |= flags::WRITE;
        self.wbuf.insert(addr, val);
        self.emit_access(Event::Write { addr, val, tx: true });
        Ok(())
    }

    /// `tsuspend.`: subsequent accesses run non-transactionally.
    pub fn suspend(&mut self) {
        assert!(self.mode.is_some(), "suspend outside transaction");
        assert!(!self.suspended, "already suspended");
        self.suspended = true;
        hooks::emit(Event::Suspend);
    }

    /// `tresume.`: leave the suspend window. Conflicts signalled while
    /// suspended take effect here (paper §2.2).
    pub fn resume(&mut self) -> Result<(), AbortReason> {
        assert!(self.mode.is_some(), "resume outside transaction");
        assert!(self.suspended, "resume without suspend");
        self.suspended = false;
        hooks::emit(Event::Resume);
        self.check_self()
    }

    /// `tend.`: make the buffered writes visible and release all tracking.
    pub fn commit(&mut self) -> Result<(), AbortReason> {
        let mode = self.mode.expect("commit outside transaction");
        assert!(!self.suspended, "commit while suspended");
        if let Some(code) = self.inject_at(InjectPoint::Commit) {
            return Err(self.self_abort(code.into()));
        }
        match self.htm.slots().transition(
            self.tid,
            self.inc,
            TxState::Active(mode),
            TxState::Committing,
        ) {
            Ok(()) => {}
            Err((_, TxState::Aborted(r))) => {
                self.cleanup();
                hooks::emit(Event::Abort { reason: r.into() });
                return Err(r);
            }
            Err(other) => unreachable!("commit from state {other:?}"),
        }
        // Apply the write buffer. Conflicting accesses stall on our
        // Committing status word and re-examine the line only after the
        // word moves on; the status store below is a Release store and
        // their poll is an Acquire load, so every value stored here
        // happens-before anything they do next.
        for (&addr, &val) in &self.wbuf {
            self.memory().store_release(addr, val);
        }
        self.cleanup();
        hooks::emit(Event::Commit);
        Ok(())
    }

    /// Explicit abort (`tabort.`). Returns the recorded reason, which is the
    /// killer's reason when someone else got there first.
    pub fn abort(&mut self) -> AbortReason {
        assert!(self.mode.is_some(), "abort outside transaction");
        self.suspended = false;
        self.self_abort(AbortReason::Explicit)
    }

    /// Lose a conflict (or capacity/explicit abort): mark self aborted,
    /// discard buffered writes, release all registrations.
    fn self_abort(&mut self, reason: AbortReason) -> AbortReason {
        let final_reason = loop {
            match self.htm.slots().load(self.tid) {
                (_, TxState::Active(m)) => {
                    match self.htm.slots().transition(
                        self.tid,
                        self.inc,
                        TxState::Active(m),
                        TxState::Aborted(reason),
                    ) {
                        Ok(()) => break reason,
                        Err(_) => continue, // a killer raced us
                    }
                }
                (_, TxState::Aborted(r)) => break r,
                (_, s) => unreachable!("self_abort in state {s:?}"),
            }
        };
        self.cleanup();
        hooks::emit(Event::Abort { reason: final_reason.into() });
        final_reason
    }

    /// Release directory registrations and capacity, then go Inactive.
    fn cleanup(&mut self) {
        let me = self.me();
        for (&line, &f) in &self.lines {
            if f & flags::WRITE != 0 {
                self.htm.directory().clear_writer_if(line, me);
            }
            if f & flags::READ_REG != 0 {
                self.htm.directory().unregister_reader(line, me);
            }
        }
        self.htm.cores().release_tmcam(self.core, self.tmcam_held);
        if self.lvdir_user {
            self.htm.cores().leave_lvdir(self.core, self.lvdir_held);
        }
        self.tmcam_held = 0;
        self.lvdir_held = 0;
        self.lvdir_user = false;
        self.lines.clear();
        self.wbuf.clear();
        self.suspended = false;
        self.htm.slots().store(self.tid, self.inc, TxState::Inactive);
        self.mode = None;
    }

    /// Re-cache the hook-active flag for accesses *outside* a hardware
    /// transaction. `begin` does this automatically; the bulk
    /// non-transactional paths (the RO fast path, the SGL slow path) must
    /// call it at episode entry or their `read_notx`/`write_notx` accesses
    /// bypass the check harness and the chaos injector.
    #[inline]
    pub fn refresh_hooks(&mut self) {
        self.hooked = hooks::active();
    }

    /// Non-transactional read: kills any active transactional writer of the
    /// line (with `class`'s reason) and returns the memory value. Inside a
    /// suspend window, a read of a line in the *own* write set returns the
    /// buffered value (suspended loads see the thread's transactional
    /// stores on POWER).
    pub fn read_notx(&mut self, addr: Addr, class: NonTxClass) -> u64 {
        let line = line_of(addr);
        if self.mode.is_some() && self.lines.get(&line).is_some_and(|f| f & flags::WRITE != 0) {
            let val = self.wbuf.get(&addr).copied().unwrap_or_else(|| self.memory().load(addr));
            self.emit_access(Event::Read { addr, val, tx: false });
            return val;
        }
        let spare = if self.mode.is_some() { Some(self.me()) } else { None };
        self.resolve_writer(line, spare, class.kill_reason());
        self.compensate_untracked_read();
        let val = self.memory().load(addr);
        self.emit_access(Event::Read { addr, val, tx: false });
        val
    }

    /// Non-transactional write: kills any active writer *and* all tracked
    /// readers of the line (the mechanism by which SGL acquisition aborts
    /// subscribed hardware transactions), then stores directly to memory.
    /// The calling thread's own suspended transaction is *not* spared —
    /// stomping on one's own tracked line dooms the transaction, as on real
    /// hardware.
    pub fn write_notx(&mut self, addr: Addr, val: u64, class: NonTxClass) {
        let line = line_of(addr);
        let reason = class.kill_reason();
        self.resolve_writer(line, None, reason);
        self.kill_readers(line, None, reason);
        self.memory().store_release(addr, val);
        self.emit_access(Event::Write { addr, val, tx: false });
    }
}

/// Panic safety: a body that unwinds between `begin` and `commit`/`abort`
/// drops the backend's thread struct, and with it this `HtmThread`, with a
/// transaction still in flight. Left alone, that transaction would keep
/// its directory registrations and TMCAM capacity forever and every peer
/// that touches one of its lines would wedge. Rolling it back here —
/// exactly `tabort.` followed by the hardware's register/cache rollback —
/// makes unwinding equivalent to an explicit abort, after which the panic
/// continues to propagate.
impl Drop for HtmThread {
    fn drop(&mut self) {
        if self.mode.is_none() {
            return;
        }
        // In-flight implies Active or Aborted (commit/abort never unwind
        // mid-transition: no user code runs inside them), both of which
        // `self_abort` resolves without panicking — required, since this
        // usually runs during an unwind already.
        self.suspended = false;
        self.self_abort(AbortReason::Explicit);
    }
}

impl std::fmt::Debug for HtmThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmThread")
            .field("tid", &self.tid)
            .field("core", &self.core)
            .field("mode", &self.mode)
            .field("suspended", &self.suspended)
            .field("tmcam_held", &self.tmcam_held)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HtmConfig;

    fn machine(words: usize) -> Arc<Htm> {
        Htm::new(HtmConfig::small(), words)
    }

    #[test]
    fn committed_writes_become_visible() {
        let htm = machine(256);
        let mut t = htm.register_thread();
        t.begin(TxMode::Htm);
        t.write(3, 99).unwrap();
        assert_eq!(htm.memory().load(3), 0, "buffered until commit");
        assert_eq!(t.read(3).unwrap(), 99, "own writes visible to self");
        t.commit().unwrap();
        assert_eq!(htm.memory().load(3), 99);
        assert!(!t.in_tx());
    }

    #[test]
    fn explicit_abort_discards_writes() {
        let htm = machine(256);
        let mut t = htm.register_thread();
        t.begin(TxMode::Rot);
        t.write(0, 7).unwrap();
        assert_eq!(t.abort(), AbortReason::Explicit);
        assert_eq!(htm.memory().load(0), 0);
        assert_eq!(htm.directory().tracked_lines(), 0);
        assert_eq!(htm.cores().tmcam_used(0), 0);
    }

    #[test]
    fn reader_kills_active_writer_and_sees_old_value() {
        let htm = machine(256);
        let mut w = htm.register_thread();
        let mut r = htm.register_thread();
        htm.memory().store(0, 5);
        w.begin(TxMode::Rot);
        w.write(0, 6).unwrap();
        r.begin(TxMode::Rot);
        // Read-after-write: the reader invalidates the writer (Fig. 2B).
        assert_eq!(r.read(0).unwrap(), 5);
        assert_eq!(w.doomed(), Some(AbortReason::Conflict));
        assert_eq!(w.commit(), Err(AbortReason::Conflict));
        r.commit().unwrap();
        assert_eq!(htm.memory().load(0), 5);
    }

    #[test]
    fn rot_write_after_read_is_tolerated() {
        // Fig. 2A: between ROTs, a write to a line previously read by a
        // concurrent ROT is NOT a conflict (reads are untracked).
        let htm = machine(256);
        let mut a = htm.register_thread();
        let mut b = htm.register_thread();
        a.begin(TxMode::Rot);
        assert_eq!(a.read(0).unwrap(), 0);
        b.begin(TxMode::Rot);
        b.write(0, 1).unwrap();
        assert!(a.doomed().is_none());
        assert!(b.doomed().is_none());
        b.commit().unwrap();
        a.commit().unwrap();
        assert_eq!(htm.memory().load(0), 1);
    }

    #[test]
    fn htm_write_after_read_kills_reader() {
        // Same schedule with regular HTM transactions: the tracked reader
        // is killed by the writer.
        let htm = machine(256);
        let mut a = htm.register_thread();
        let mut b = htm.register_thread();
        a.begin(TxMode::Htm);
        assert_eq!(a.read(0).unwrap(), 0);
        b.begin(TxMode::Htm);
        b.write(0, 1).unwrap();
        assert_eq!(a.doomed(), Some(AbortReason::Conflict));
        assert_eq!(a.commit(), Err(AbortReason::Conflict));
        b.commit().unwrap();
        assert_eq!(htm.memory().load(0), 1);
    }

    #[test]
    fn write_write_kills_last_writer() {
        let htm = machine(256);
        let mut a = htm.register_thread();
        let mut b = htm.register_thread();
        a.begin(TxMode::Rot);
        a.write(0, 1).unwrap();
        b.begin(TxMode::Rot);
        assert_eq!(b.write(0, 2), Err(AbortReason::Conflict), "last writer dies");
        assert!(!b.in_tx(), "loser is torn down");
        a.commit().unwrap();
        assert_eq!(htm.memory().load(0), 1);
    }

    #[test]
    fn different_words_same_line_still_conflict() {
        let htm = machine(256);
        let mut a = htm.register_thread();
        let mut b = htm.register_thread();
        a.begin(TxMode::Rot);
        a.write(0, 1).unwrap();
        b.begin(TxMode::Rot);
        // Word 1 shares cache line 0 with word 0.
        assert_eq!(b.write(1, 2), Err(AbortReason::Conflict));
        a.commit().unwrap();
    }

    #[test]
    fn different_lines_do_not_conflict() {
        let htm = machine(256);
        let mut a = htm.register_thread();
        let mut b = htm.register_thread();
        a.begin(TxMode::Rot);
        a.write(0, 1).unwrap();
        b.begin(TxMode::Rot);
        b.write(16, 2).unwrap();
        a.commit().unwrap();
        b.commit().unwrap();
        assert_eq!(htm.memory().load(0), 1);
        assert_eq!(htm.memory().load(16), 2);
    }

    #[test]
    fn htm_capacity_abort_on_reads() {
        let htm = Htm::new(
            HtmConfig { cores: 1, smt: 2, tmcam_lines: 4, ..HtmConfig::default() },
            16 * 64,
        );
        let mut t = htm.register_thread();
        t.begin(TxMode::Htm);
        for i in 0..4u64 {
            t.read(i * 16).unwrap();
        }
        assert_eq!(t.read(4 * 16), Err(AbortReason::Capacity));
        assert_eq!(htm.cores().tmcam_used(0), 0, "capacity released after abort");
    }

    #[test]
    fn rot_reads_have_no_capacity_bound() {
        let htm = Htm::new(
            HtmConfig { cores: 1, smt: 2, tmcam_lines: 4, ..HtmConfig::default() },
            16 * 64,
        );
        let mut t = htm.register_thread();
        t.begin(TxMode::Rot);
        for i in 0..64u64 {
            t.read(i * 16).unwrap();
        }
        // Writes still bounded.
        for i in 0..4u64 {
            t.write(i * 16, 1).unwrap();
        }
        assert_eq!(t.write(4 * 16, 1), Err(AbortReason::Capacity));
    }

    #[test]
    fn tmcam_shared_between_smt_threads() {
        // Two threads on one core share the 4-line TMCAM.
        let htm = Htm::new(
            HtmConfig { cores: 1, smt: 2, tmcam_lines: 4, ..HtmConfig::default() },
            16 * 64,
        );
        let mut a = htm.register_thread();
        let mut b = htm.register_thread();
        a.begin(TxMode::Rot);
        b.begin(TxMode::Rot);
        a.write(0, 1).unwrap();
        a.write(16, 1).unwrap();
        b.write(32, 1).unwrap();
        b.write(48, 1).unwrap();
        assert_eq!(a.write(64, 1), Err(AbortReason::Capacity));
        b.commit().unwrap();
        // After b commits, capacity is free again for a new transaction.
        a.begin(TxMode::Rot);
        a.write(64, 1).unwrap();
        a.commit().unwrap();
    }

    #[test]
    fn repeated_access_to_same_line_charges_once() {
        let htm =
            Htm::new(HtmConfig { cores: 1, smt: 1, tmcam_lines: 2, ..HtmConfig::default() }, 256);
        let mut t = htm.register_thread();
        t.begin(TxMode::Htm);
        for i in 0..16u64 {
            t.read(i).unwrap(); // all words of line 0
        }
        t.write(3, 1).unwrap(); // read+write same line: still one entry
        assert_eq!(t.tmcam_footprint(), 1);
        t.commit().unwrap();
    }

    #[test]
    fn suspended_accesses_are_untracked_and_nontransactional() {
        let htm = machine(512);
        let mut t = htm.register_thread();
        t.begin(TxMode::Rot);
        t.write(0, 1).unwrap();
        t.suspend();
        t.write(16, 42).unwrap(); // non-transactional: immediately visible
        assert_eq!(htm.memory().load(16), 42);
        assert_eq!(t.read(16).unwrap(), 42);
        assert_eq!(t.read(0).unwrap(), 1, "suspended load sees own tx store");
        t.resume().unwrap();
        assert_eq!(t.write_set_lines(), 1, "suspended write not in write set");
        t.commit().unwrap();
        assert_eq!(htm.memory().load(0), 1);
    }

    #[test]
    fn conflict_during_suspension_surfaces_at_resume() {
        let htm = machine(256);
        let mut w = htm.register_thread();
        let mut r = htm.register_thread();
        w.begin(TxMode::Rot);
        w.write(0, 9).unwrap();
        w.suspend();
        // r's non-transactional read kills w while it is suspended.
        assert_eq!(r.read_notx(0, NonTxClass::Data), 0);
        assert_eq!(w.resume(), Err(AbortReason::Conflict));
        assert!(!w.in_tx());
    }

    #[test]
    fn nontx_sgl_write_kills_with_nontx_reason() {
        let htm = machine(256);
        let mut tx = htm.register_thread();
        let mut sgl = htm.register_thread();
        tx.begin(TxMode::Htm);
        tx.read(0).unwrap(); // subscribe
        sgl.write_notx(0, 1, NonTxClass::Sgl);
        assert_eq!(tx.commit(), Err(AbortReason::NonTx));
        assert_eq!(htm.memory().load(0), 1);
    }

    #[test]
    fn nontx_write_kills_active_writer() {
        let htm = machine(256);
        let mut tx = htm.register_thread();
        let mut other = htm.register_thread();
        tx.begin(TxMode::Rot);
        tx.write(0, 5).unwrap();
        other.write_notx(0, 77, NonTxClass::Data);
        assert_eq!(tx.commit(), Err(AbortReason::Conflict));
        assert_eq!(htm.memory().load(0), 77, "non-tx write wins, tx store discarded");
    }

    #[test]
    fn first_abort_reason_wins() {
        let htm = machine(256);
        let mut t = htm.register_thread();
        let mut k = htm.register_thread();
        t.begin(TxMode::Rot);
        t.write(0, 1).unwrap();
        k.read_notx(0, NonTxClass::Data); // kills with Conflict
        assert_eq!(t.abort(), AbortReason::Conflict, "killer's reason sticks");
    }

    #[test]
    fn incarnations_prevent_stale_kills() {
        let htm = machine(256);
        let mut a = htm.register_thread();
        let mut b = htm.register_thread();
        a.begin(TxMode::Rot);
        a.write(0, 1).unwrap();
        a.commit().unwrap();
        // a starts a new transaction on a different line; a stale conflict
        // on line 0 must not touch it.
        a.begin(TxMode::Rot);
        a.write(32, 2).unwrap();
        b.begin(TxMode::Rot);
        b.write(0, 3).unwrap();
        b.commit().unwrap();
        assert!(a.doomed().is_none());
        a.commit().unwrap();
        assert_eq!(htm.memory().load(32), 2);
    }

    #[test]
    fn lvdir_extends_htm_read_capacity() {
        let mut config = HtmConfig { cores: 2, smt: 1, tmcam_lines: 4, ..HtmConfig::default() };
        config.lvdir = Some(crate::config::LvdirConfig { lines: 128, max_users: 2 });
        let htm = Htm::new(config, 16 * 256);
        let mut t = htm.register_thread();
        t.begin(TxMode::Htm);
        // 100 read lines — far over TMCAM, within LVDIR.
        for i in 0..100u64 {
            t.read(i * 16).unwrap();
        }
        // Writes still bound by TMCAM.
        for i in 0..4u64 {
            t.write((100 + i) * 16, 1).unwrap();
        }
        assert_eq!(t.write(104 * 16, 1), Err(AbortReason::Capacity));
    }

    #[test]
    fn lvdir_third_user_falls_back_to_tmcam() {
        let mut config = HtmConfig { cores: 1, smt: 4, tmcam_lines: 4, ..HtmConfig::default() };
        config.lvdir = Some(crate::config::LvdirConfig { lines: 128, max_users: 2 });
        let htm = Htm::new(config, 16 * 256);
        let mut a = htm.register_thread();
        let mut b = htm.register_thread();
        let mut c = htm.register_thread();
        a.begin(TxMode::Htm);
        b.begin(TxMode::Htm);
        c.begin(TxMode::Htm); // no LVDIR slot left
        for i in 0..4u64 {
            c.read(i * 16).unwrap();
        }
        assert_eq!(c.read(4 * 16), Err(AbortReason::Capacity));
        a.commit().unwrap();
        b.commit().unwrap();
    }

    #[test]
    fn concurrent_counter_increments_are_serializable() {
        // N threads × M increments through HTM transactions must not lose
        // updates: the hardware conflict detection serialises them.
        let htm = Htm::new(HtmConfig { cores: 2, smt: 4, ..HtmConfig::default() }, 64);
        let threads = 4;
        let per = 200;
        crossbeam_utils::thread::scope(|s| {
            for _ in 0..threads {
                let htm = Arc::clone(&htm);
                s.spawn(move |_| {
                    let mut t = htm.register_thread();
                    let mut done = 0;
                    while done < per {
                        t.begin(TxMode::Htm);
                        let ok = (|| {
                            let v = t.read(0)?;
                            t.write(0, v + 1)?;
                            Ok::<_, AbortReason>(())
                        })();
                        match ok {
                            Ok(()) => {
                                if t.commit().is_ok() {
                                    done += 1;
                                }
                            }
                            Err(_) => { /* retried; engine already cleaned up */ }
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(htm.memory().load(0), (threads * per) as u64);
        assert_eq!(htm.directory().tracked_lines(), 0);
        assert_eq!(htm.cores().tmcam_used(0) + htm.cores().tmcam_used(1), 0);
    }
}
