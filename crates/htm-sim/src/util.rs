//! Small utilities: a fast integer hasher for the hot per-access maps.

use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-multiply hasher for integer keys (cache-line ids, word
/// addresses). The conflict directory and the per-transaction access maps
/// hash on every simulated memory access, so SipHash (std's default) would
/// dominate the profile; this is the standard fxhash-style replacement,
/// written locally to keep the dependency set to the approved list.
#[derive(Default)]
pub struct IntHasher {
    state: u64,
}

impl Hasher for IntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback; the hot paths all use write_u64.
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.state ^= self.state >> 29;
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`IntHasher`].
pub type BuildIntHasher = BuildHasherDefault<IntHasher>;

/// `HashMap` keyed by integers using the fast hasher.
pub type IntMap<K, V> = std::collections::HashMap<K, V, BuildIntHasher>;

/// `HashSet` keyed by integers using the fast hasher.
pub type IntSet<K> = std::collections::HashSet<K, BuildIntHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        use std::hash::BuildHasher;
        let b = BuildIntHasher::default();
        let h = |x: u64| {
            let mut h = b.build_hasher();
            h.write_u64(x);
            h.finish()
        };
        // Sequential keys must not collide in the low bits (shard selection).
        let mut lows = std::collections::HashSet::new();
        for i in 0..64u64 {
            lows.insert(h(i) & 0xFF);
        }
        assert!(lows.len() > 32, "hash low bits collapse: {}", lows.len());
    }

    #[test]
    fn intmap_works() {
        let mut m: IntMap<u64, u32> = IntMap::default();
        for i in 0..1000 {
            m.insert(i, i as u32 * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.len(), 1000);
    }
}
