//! Small utilities: a fast integer hasher for the hot per-access maps and
//! the shared spin-wait idiom.

use crossbeam_utils::Backoff;
use std::hash::{BuildHasherDefault, Hasher};

/// Spin until `cond()` holds: exponential backoff first, degrading to
/// `yield_now` once the backoff saturates (important on oversubscribed
/// machines, where the thread being waited on may need our timeslice to
/// make progress).
///
/// Every wait loop in the workspace — coherence stalls on committing
/// transactions, `SyncWithGL`, the SGL drain, the SGL acquisition spin —
/// goes through this one helper so the waiting policy stays uniform and
/// tunable in one place. `cond` may have side effects; it is re-evaluated
/// once per spin iteration.
#[inline]
pub fn spin_wait(mut cond: impl FnMut() -> bool) {
    let backoff = Backoff::new();
    while !cond() {
        // Under tm-check's cooperative scheduler this Poll is the yield
        // point that lets the thread being waited on actually run.
        txmem::hooks::emit(txmem::hooks::Event::Poll);
        backoff.snooze();
        if backoff.is_completed() {
            std::thread::yield_now();
        }
    }
}

/// Outcome of a [`spin_wait_deadline`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitReport {
    /// The deadline expired before the condition held.
    pub timed_out: bool,
    /// The wait actually spun (false: condition held on entry, zero cost).
    pub spun: bool,
    /// Wall-clock time spent waiting, in nanoseconds (0 if `!spun`).
    pub waited_ns: u64,
}

impl WaitReport {
    /// A wait that was satisfied immediately.
    pub const IMMEDIATE: WaitReport = WaitReport { timed_out: false, spun: false, waited_ns: 0 };
}

/// [`spin_wait`] with an optional deadline: returns instead of spinning
/// forever once `deadline` wall-clock time has elapsed, reporting how long
/// the wait ran and whether it tripped. `deadline: None` never times out
/// (but still reports the wait duration).
///
/// The fast path is as cheap as [`spin_wait`]: when `cond` holds on entry
/// no clock is read at all, and a wait that resolves within the
/// exponential-backoff spin regime (microseconds) never reads one either —
/// it reports `waited_ns: 0`. The clock (`Instant`, monotonic) is first
/// consulted once the backoff has saturated into `yield_now`, where one
/// read per scheduler round-trip is noise; deadlines are tens of
/// milliseconds and up, so losing the first microsecond of precision is
/// irrelevant. This is what lets the quiescence watchdog sit on every
/// wait site without showing up in committed-transaction latency, even on
/// heavily oversubscribed machines where commits quiesce constantly.
pub fn spin_wait_deadline(
    mut cond: impl FnMut() -> bool,
    deadline: Option<std::time::Duration>,
) -> WaitReport {
    if cond() {
        return WaitReport::IMMEDIATE;
    }
    let backoff = Backoff::new();
    let mut start: Option<std::time::Instant> = None;
    loop {
        txmem::hooks::emit(txmem::hooks::Event::Poll);
        backoff.snooze();
        if backoff.is_completed() {
            std::thread::yield_now();
        }
        if cond() {
            let waited_ns = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
            return WaitReport { timed_out: false, spun: true, waited_ns };
        }
        if backoff.is_completed() {
            let s = *start.get_or_insert_with(std::time::Instant::now);
            if let Some(limit) = deadline {
                let waited = s.elapsed();
                if waited >= limit {
                    return WaitReport {
                        timed_out: true,
                        spun: true,
                        waited_ns: waited.as_nanos() as u64,
                    };
                }
            }
        }
    }
}

/// Fibonacci-multiply hasher for integer keys (cache-line ids, word
/// addresses). The conflict directory and the per-transaction access maps
/// hash on every simulated memory access, so SipHash (std's default) would
/// dominate the profile; this is the standard fxhash-style replacement,
/// written locally to keep the dependency set to the approved list.
#[derive(Default)]
pub struct IntHasher {
    state: u64,
}

impl Hasher for IntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback; the hot paths all use write_u64.
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.state ^= self.state >> 29;
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`IntHasher`].
pub type BuildIntHasher = BuildHasherDefault<IntHasher>;

/// `HashMap` keyed by integers using the fast hasher.
pub type IntMap<K, V> = std::collections::HashMap<K, V, BuildIntHasher>;

/// `HashSet` keyed by integers using the fast hasher.
pub type IntSet<K> = std::collections::HashSet<K, BuildIntHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        use std::hash::BuildHasher;
        let b = BuildIntHasher::default();
        let h = |x: u64| {
            let mut h = b.build_hasher();
            h.write_u64(x);
            h.finish()
        };
        // Sequential keys must not collide in the low bits (shard selection).
        let mut lows = std::collections::HashSet::new();
        for i in 0..64u64 {
            lows.insert(h(i) & 0xFF);
        }
        assert!(lows.len() > 32, "hash low bits collapse: {}", lows.len());
    }

    #[test]
    fn spin_wait_observes_condition() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let flag = AtomicBool::new(false);
        crossbeam_utils::thread::scope(|s| {
            s.spawn(|_| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                flag.store(true, Ordering::Release);
            });
            spin_wait(|| flag.load(Ordering::Acquire));
            assert!(flag.load(Ordering::Acquire));
        })
        .unwrap();
    }

    #[test]
    fn deadline_wait_times_out_and_reports() {
        use std::time::Duration;
        // Condition never holds: must trip, not hang.
        let r = spin_wait_deadline(|| false, Some(Duration::from_millis(5)));
        assert!(r.timed_out && r.spun);
        assert!(r.waited_ns >= 5_000_000, "reported {} ns", r.waited_ns);
        // Condition holds on entry: zero-cost path, no clock read.
        let r = spin_wait_deadline(|| true, Some(Duration::from_millis(5)));
        assert_eq!(r, WaitReport::IMMEDIATE);
        // No deadline: behaves like spin_wait but reports the duration.
        use std::sync::atomic::{AtomicBool, Ordering};
        let flag = AtomicBool::new(false);
        crossbeam_utils::thread::scope(|s| {
            s.spawn(|_| {
                std::thread::sleep(Duration::from_millis(2));
                flag.store(true, Ordering::Release);
            });
            let r = spin_wait_deadline(|| flag.load(Ordering::Acquire), None);
            assert!(!r.timed_out && r.spun && r.waited_ns > 0);
        })
        .unwrap();
    }

    #[test]
    fn intmap_works() {
        let mut m: IntMap<u64, u32> = IntMap::default();
        for i in 0..1000 {
            m.insert(i, i as u32 * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.len(), 1000);
    }
}
