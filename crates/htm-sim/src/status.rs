//! Per-hardware-thread transaction status words.
//!
//! Each hardware thread owns one cache-padded atomic status word packing
//! `(incarnation << 3) | state`. All conflict resolution is a single CAS on
//! the victim's status word (`Active* → Aborted*`), which makes kills
//! race-free without any victim-side locking: a victim that loses the CAS
//! simply observes its fate at its next simulated instruction — the moral
//! equivalent of the asynchronous abort delivery in real P8-HTM.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a transaction aborted — the taxonomy the paper's figures plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Data conflict detected by the (simulated) hardware ("transactional"
    /// aborts in the figures).
    Conflict,
    /// Killed by an SGL-class non-transactional access (a locked fall-back
    /// path stomping on subscribed transactions) — "non-transactional"
    /// aborts in the figures.
    NonTx,
    /// TMCAM (or LVDIR) capacity exceeded.
    Capacity,
    /// Explicit user abort (`tabort.`).
    Explicit,
}

/// Transaction execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxMode {
    /// Regular HTM transaction: reads and writes tracked, serializable.
    Htm,
    /// Rollback-only transaction: only writes tracked (paper §2.2).
    Rot,
}

/// Classification of a non-transactional access, which decides the abort
/// reason recorded on any transaction it kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonTxClass {
    /// An ordinary data access (suspended-mode access, read-only fast path).
    /// Kills count as data [`AbortReason::Conflict`]s.
    Data,
    /// A fall-back-lock access. Kills count as [`AbortReason::NonTx`] — the
    /// "non-transactional aborts" series of the figures.
    Sgl,
}

impl NonTxClass {
    #[inline]
    pub fn kill_reason(self) -> AbortReason {
        match self {
            NonTxClass::Data => AbortReason::Conflict,
            NonTxClass::Sgl => AbortReason::NonTx,
        }
    }
}

// The check-hook event vocabulary lives in `txmem` (below this crate in
// the dependency order) and mirrors the abort taxonomy as `AbortCode`.
impl From<txmem::hooks::AbortCode> for AbortReason {
    fn from(code: txmem::hooks::AbortCode) -> Self {
        use txmem::hooks::AbortCode as C;
        match code {
            C::Conflict => AbortReason::Conflict,
            C::NonTx => AbortReason::NonTx,
            C::Capacity => AbortReason::Capacity,
            C::Explicit => AbortReason::Explicit,
        }
    }
}

impl From<AbortReason> for txmem::hooks::AbortCode {
    fn from(reason: AbortReason) -> Self {
        use txmem::hooks::AbortCode as C;
        match reason {
            AbortReason::Conflict => C::Conflict,
            AbortReason::NonTx => C::NonTx,
            AbortReason::Capacity => C::Capacity,
            AbortReason::Explicit => C::Explicit,
        }
    }
}

/// Decoded status-word state (low 3 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxState {
    Inactive,
    Active(TxMode),
    Committing,
    Aborted(AbortReason),
}

const S_INACTIVE: u64 = 0;
const S_ACTIVE_HTM: u64 = 1;
const S_ACTIVE_ROT: u64 = 2;
const S_COMMITTING: u64 = 3;
const S_AB_CONFLICT: u64 = 4;
const S_AB_NONTX: u64 = 5;
const S_AB_CAPACITY: u64 = 6;
const S_AB_EXPLICIT: u64 = 7;
const STATE_BITS: u64 = 3;
const STATE_MASK: u64 = (1 << STATE_BITS) - 1;

/// Pack `(incarnation, state)` into a status word.
#[inline]
pub fn pack(inc: u64, state: TxState) -> u64 {
    let s = match state {
        TxState::Inactive => S_INACTIVE,
        TxState::Active(TxMode::Htm) => S_ACTIVE_HTM,
        TxState::Active(TxMode::Rot) => S_ACTIVE_ROT,
        TxState::Committing => S_COMMITTING,
        TxState::Aborted(AbortReason::Conflict) => S_AB_CONFLICT,
        TxState::Aborted(AbortReason::NonTx) => S_AB_NONTX,
        TxState::Aborted(AbortReason::Capacity) => S_AB_CAPACITY,
        TxState::Aborted(AbortReason::Explicit) => S_AB_EXPLICIT,
    };
    (inc << STATE_BITS) | s
}

/// Unpack a status word into `(incarnation, state)`.
#[inline]
pub fn unpack(word: u64) -> (u64, TxState) {
    let inc = word >> STATE_BITS;
    let state = match word & STATE_MASK {
        S_INACTIVE => TxState::Inactive,
        S_ACTIVE_HTM => TxState::Active(TxMode::Htm),
        S_ACTIVE_ROT => TxState::Active(TxMode::Rot),
        S_COMMITTING => TxState::Committing,
        S_AB_CONFLICT => TxState::Aborted(AbortReason::Conflict),
        S_AB_NONTX => TxState::Aborted(AbortReason::NonTx),
        S_AB_CAPACITY => TxState::Aborted(AbortReason::Capacity),
        S_AB_EXPLICIT => TxState::Aborted(AbortReason::Explicit),
        _ => unreachable!(),
    };
    (inc, state)
}

/// One status slot per hardware thread.
pub struct SlotArray {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl SlotArray {
    pub fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || CachePadded::new(AtomicU64::new(pack(0, TxState::Inactive))));
        SlotArray { slots: v.into_boxed_slice() }
    }

    /// Current `(incarnation, state)` of a slot.
    #[inline]
    pub fn load(&self, tid: usize) -> (u64, TxState) {
        unpack(self.slots[tid].load(Ordering::Acquire))
    }

    /// Unconditional store (only ever done by the owning thread).
    #[inline]
    pub fn store(&self, tid: usize, inc: u64, state: TxState) {
        self.slots[tid].store(pack(inc, state), Ordering::Release);
    }

    /// CAS the slot from an exact `(inc, from)` to `(inc, to)`.
    ///
    /// Returns the actual `(inc, state)` on failure. Used for kills
    /// (`Active → Aborted`) and for the owner's `Active → Committing`
    /// transition; the incarnation check defeats ABA with recycled slots.
    #[inline]
    pub fn transition(
        &self,
        tid: usize,
        inc: u64,
        from: TxState,
        to: TxState,
    ) -> Result<(), (u64, TxState)> {
        self.slots[tid]
            .compare_exchange(pack(inc, from), pack(inc, to), Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
            .map_err(unpack)
    }

    /// Attempt to kill `(tid, inc)` with `reason`, whatever active mode it
    /// is in. Returns:
    /// * `Ok(())` — we killed it (or it was already aborted with any reason),
    /// * `Err(state)` — it is Committing, Inactive, or a different
    ///   incarnation (stale), and the caller must react.
    pub fn try_kill(&self, tid: usize, inc: u64, reason: AbortReason) -> Result<(), TxState> {
        loop {
            let (cur_inc, cur_state) = self.load(tid);
            if cur_inc != inc {
                return Err(TxState::Inactive); // stale owner
            }
            match cur_state {
                TxState::Active(_) => {
                    match self.transition(tid, inc, cur_state, TxState::Aborted(reason)) {
                        Ok(()) => return Ok(()),
                        Err(_) => continue, // state moved under us; re-examine
                    }
                }
                TxState::Aborted(_) => return Ok(()),
                other => return Err(other),
            }
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let cases = [
            TxState::Inactive,
            TxState::Active(TxMode::Htm),
            TxState::Active(TxMode::Rot),
            TxState::Committing,
            TxState::Aborted(AbortReason::Conflict),
            TxState::Aborted(AbortReason::NonTx),
            TxState::Aborted(AbortReason::Capacity),
            TxState::Aborted(AbortReason::Explicit),
        ];
        for (i, s) in cases.iter().enumerate() {
            let (inc, state) = unpack(pack(i as u64 * 7 + 1, *s));
            assert_eq!(inc, i as u64 * 7 + 1);
            assert_eq!(state, *s);
        }
    }

    #[test]
    fn transition_requires_exact_from() {
        let a = SlotArray::new(1);
        a.store(0, 5, TxState::Active(TxMode::Rot));
        assert!(a.transition(0, 5, TxState::Active(TxMode::Htm), TxState::Committing).is_err());
        assert!(a.transition(0, 4, TxState::Active(TxMode::Rot), TxState::Committing).is_err());
        assert!(a.transition(0, 5, TxState::Active(TxMode::Rot), TxState::Committing).is_ok());
        assert_eq!(a.load(0), (5, TxState::Committing));
    }

    #[test]
    fn kill_active_succeeds() {
        let a = SlotArray::new(1);
        a.store(0, 3, TxState::Active(TxMode::Rot));
        assert_eq!(a.try_kill(0, 3, AbortReason::Conflict), Ok(()));
        assert_eq!(a.load(0), (3, TxState::Aborted(AbortReason::Conflict)));
        // A second kill (different reason) is a no-op success: first reason wins.
        assert_eq!(a.try_kill(0, 3, AbortReason::NonTx), Ok(()));
        assert_eq!(a.load(0), (3, TxState::Aborted(AbortReason::Conflict)));
    }

    #[test]
    fn kill_committing_fails() {
        let a = SlotArray::new(1);
        a.store(0, 3, TxState::Committing);
        assert_eq!(a.try_kill(0, 3, AbortReason::Conflict), Err(TxState::Committing));
    }

    #[test]
    fn kill_stale_incarnation_fails() {
        let a = SlotArray::new(1);
        a.store(0, 9, TxState::Active(TxMode::Htm));
        assert_eq!(a.try_kill(0, 8, AbortReason::Conflict), Err(TxState::Inactive));
    }

    #[test]
    fn nontx_class_kill_reasons() {
        assert_eq!(NonTxClass::Data.kill_reason(), AbortReason::Conflict);
        assert_eq!(NonTxClass::Sgl.kill_reason(), AbortReason::NonTx);
    }
}
