//! # htm-sim — a software simulator of the IBM POWER8/9 HTM ("P8-HTM")
//!
//! The SI-HTM paper (Filipe et al., PPoPP '19) builds on hardware features
//! that only exist on IBM POWER8/9 processors: best-effort hardware
//! transactions with a tiny per-core capacity (the 8 KB TMCAM, 64 cache
//! lines shared by up to 8 SMT threads), *rollback-only transactions*
//! (ROTs) whose reads are untracked, and a `tsuspend.`/`tresume.` escape
//! hatch. This crate reproduces those semantics in portable Rust so the
//! paper's algorithms and evaluation can run anywhere.
//!
//! ## What is modelled (from §2.2 of the paper)
//!
//! * **Conflict detection at cache-line granularity** via a lock-free
//!   line-ownership directory over a simulated [`txmem::TxMemory`].
//! * **Conflict-resolution policy**: a read of a line transactionally
//!   written by another thread kills that *writer*; a write to a line
//!   written by another active transaction kills the *last* (requesting)
//!   writer; a write to a line tracked by HTM-mode readers kills those
//!   *readers*. ROT reads are untracked, so write-after-read is tolerated
//!   between ROTs (paper Fig. 2A) while read-after-write still aborts the
//!   writer (Fig. 2B).
//! * **Write buffering**: transactional stores are invisible to other
//!   threads until `HTMEnd`; a conflicting reader that kills a writer
//!   observes the *old* value (Fig. 4A), and a reader racing with a
//!   committing writer stalls until the commit completes (coherence
//!   serialisation) and then observes the *new* value.
//! * **TMCAM capacity**: per-virtual-core occupancy counters; HTM-mode
//!   transactions consume one entry per distinct line read *or* written,
//!   ROTs only per line written (plus an optional tracked fraction of
//!   reads, cf. the paper's footnote 1). Exceeding the shared budget
//!   yields a capacity abort. SMT threads mapped to the same virtual core
//!   share the budget — the effect that makes plain HTM collapse under
//!   SMT.
//! * **Suspend/resume**: accesses inside the window run non-transactionally
//!   and consume no capacity; conflicts signalled while suspended doom the
//!   transaction and surface at `resume()`.
//! * **POWER9 L2 LVDIR** (optional): a large read-tracking structure usable
//!   by at most two threads at a time, shared between core pairs.
//!
//! ## What is *not* modelled
//!
//! Timing. The simulator is functionally faithful but does not model cycle
//! costs; every backend in the workspace pays the same per-access simulation
//! overhead, so cross-backend throughput *ratios* remain meaningful while
//! absolute numbers do not compare to real hardware.
//!
//! ## Example
//!
//! ```
//! use htm_sim::{Htm, HtmConfig, TxMode};
//!
//! let htm = Htm::new(HtmConfig::default(), 1024);
//! let mut t = htm.register_thread();
//! t.begin(TxMode::Rot);
//! t.write(0, 42).unwrap();
//! t.commit().unwrap();
//! assert_eq!(htm.memory().load(0), 42);
//! ```

pub mod config;
pub mod directory;
pub mod status;
pub mod tmcam;
pub mod txn;
pub mod util;

pub use config::{DirectoryKind, HtmConfig, LvdirConfig, PinLayout};
pub use status::{AbortReason, NonTxClass, TxMode, TxState};
pub use txn::HtmThread;

use directory::Directory;
use status::SlotArray;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tmcam::Cores;
use txmem::{TxMemory, VirtualClock};

/// The simulated processor: shared memory plus all HTM bookkeeping.
///
/// One `Htm` instance stands for one (virtual) POWER8 machine. Threads are
/// registered with [`Htm::register_thread`] and are assigned round-robin to
/// virtual cores (thread *t* → core *t mod cores*), matching the thread
/// pinning used in the paper's artifact: SMT levels only engage once the
/// thread count exceeds the core count.
pub struct Htm {
    config: HtmConfig,
    memory: TxMemory,
    clock: VirtualClock,
    slots: SlotArray,
    directory: Directory,
    cores: Cores,
    next_tid: AtomicUsize,
}

impl Htm {
    /// Build a simulated machine with `memory_words` words of shared memory.
    pub fn new(config: HtmConfig, memory_words: usize) -> Arc<Self> {
        config.validate();
        let max_threads = config.max_threads();
        let memory = TxMemory::new(memory_words);
        let directory = Directory::new(config.directory, memory.lines(), config.directory_shards);
        Arc::new(Htm {
            memory,
            clock: VirtualClock::new(),
            slots: SlotArray::new(max_threads),
            directory,
            cores: Cores::new(&config),
            next_tid: AtomicUsize::new(0),
            config,
        })
    }

    /// The simulated shared memory (raw access; see [`txmem::TxMemory`]).
    #[inline]
    pub fn memory(&self) -> &TxMemory {
        &self.memory
    }

    /// The virtual time base register (used by SI-HTM's `currentTime()`).
    #[inline]
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The machine configuration.
    #[inline]
    pub fn config(&self) -> &HtmConfig {
        &self.config
    }

    /// Number of threads registered so far.
    pub fn threads_registered(&self) -> usize {
        self.next_tid.load(Ordering::Relaxed)
    }

    /// Register the calling thread, assigning the next hardware-thread slot.
    ///
    /// Panics when the machine's `cores * smt` hardware threads are
    /// exhausted, like over-subscribing `taskset` pinning would on the real
    /// box.
    pub fn register_thread(self: &Arc<Self>) -> HtmThread {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        assert!(
            tid < self.config.max_threads(),
            "registered more threads ({}) than the machine has hardware threads ({})",
            tid + 1,
            self.config.max_threads()
        );
        HtmThread::new(Arc::clone(self), tid)
    }

    /// Kill the transaction currently active on hardware thread `tid`, if
    /// any. Returns whether a transaction was (or already had been) killed.
    ///
    /// This is the hook for the paper's future-work "killing alternative"
    /// (§6): completed transactions may decide to kill long-running active
    /// transactions instead of waiting for them. It is also a faithful
    /// stand-in for delivering a `tabort.`-class asynchronous kill.
    pub fn kill_active(&self, tid: usize, reason: AbortReason) -> bool {
        let (inc, state) = self.slots.load(tid);
        match state {
            TxState::Active(_) => self.slots.try_kill(tid, inc, reason).is_ok(),
            TxState::Aborted(_) => true,
            _ => false,
        }
    }

    pub(crate) fn slots(&self) -> &SlotArray {
        &self.slots
    }

    /// The conflict directory (introspection for tests and metrics).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The capacity counters (introspection for tests and metrics).
    pub fn cores(&self) -> &Cores {
        &self.cores
    }
}

impl std::fmt::Debug for Htm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Htm")
            .field("config", &self.config)
            .field("memory_words", &self.memory.len())
            .field("threads", &self.threads_registered())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_construction() {
        let htm = Htm::new(HtmConfig::default(), 100);
        assert_eq!(htm.config().cores, 10);
        assert_eq!(htm.config().smt, 8);
        assert!(htm.memory().len() >= 100);
        assert_eq!(htm.threads_registered(), 0);
    }

    #[test]
    fn thread_registration_assigns_cores_round_robin() {
        let htm = Htm::new(HtmConfig { cores: 4, smt: 2, ..HtmConfig::default() }, 64);
        let threads: Vec<_> = (0..8).map(|_| htm.register_thread()).collect();
        for (i, t) in threads.iter().enumerate() {
            assert_eq!(t.tid(), i);
            assert_eq!(t.core(), i % 4);
        }
    }

    #[test]
    #[should_panic(expected = "hardware threads")]
    fn over_registration_panics() {
        let htm = Htm::new(HtmConfig { cores: 1, smt: 1, ..HtmConfig::default() }, 64);
        let _a = htm.register_thread();
        let _b = htm.register_thread();
    }
}
