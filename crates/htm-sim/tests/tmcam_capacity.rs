//! TMCAM capacity edge cases (§2.1: an 8 KB TMCAM of 64 x 128-byte lines
//! per core, shared among the core's SMT threads).
//!
//! These tests pin the *exact* boundary — the 64th distinct line fits and
//! commits, the 65th capacity-aborts — plus the SMT-sibling budget sharing
//! and the footnote-1 partial tracking of ROT reads, all at the paper's
//! full 64-line TMCAM size rather than the scaled-down sizes the stress
//! suite uses.

use htm_sim::{AbortReason, Htm, HtmConfig, TxMode};
use txmem::WORDS_PER_LINE;

const LINES: u64 = 64;

fn line_addr(i: u64) -> u64 {
    i * WORDS_PER_LINE as u64
}

fn solo_machine() -> std::sync::Arc<Htm> {
    // One hardware thread: the whole TMCAM belongs to it.
    Htm::new(
        HtmConfig { cores: 1, smt: 1, ..HtmConfig::default() },
        ((LINES + 8) * WORDS_PER_LINE as u64) as usize,
    )
}

#[test]
fn sixty_fourth_distinct_line_commits() {
    let htm = solo_machine();
    let mut t = htm.register_thread();
    t.begin(TxMode::Htm);
    for i in 0..LINES {
        t.write(line_addr(i), i + 1).unwrap();
    }
    assert_eq!(t.tmcam_footprint(), LINES);
    t.commit().unwrap();
    for i in 0..LINES {
        assert_eq!(htm.memory().load(line_addr(i)), i + 1);
    }
}

#[test]
fn sixty_fifth_distinct_line_capacity_aborts() {
    let htm = solo_machine();
    let mut t = htm.register_thread();
    t.begin(TxMode::Htm);
    for i in 0..LINES {
        t.write(line_addr(i), 1).unwrap();
    }
    assert_eq!(t.write(line_addr(LINES), 1), Err(AbortReason::Capacity));
    // The abort tore the transaction down: nothing reached memory.
    for i in 0..=LINES {
        assert_eq!(htm.memory().load(line_addr(i)), 0);
    }
}

#[test]
fn repeated_accesses_to_a_tracked_line_are_free() {
    // Capacity is per distinct *line*, not per access: re-reading and
    // re-writing tracked lines (and other words of the same line) must not
    // consume new entries.
    let htm = solo_machine();
    let mut t = htm.register_thread();
    t.begin(TxMode::Htm);
    for i in 0..LINES {
        t.write(line_addr(i), 1).unwrap();
    }
    for i in 0..LINES {
        assert_eq!(t.read(line_addr(i)), Ok(1));
        t.write(line_addr(i) + 1, 2).unwrap(); // same line, different word
    }
    assert_eq!(t.tmcam_footprint(), LINES);
    t.commit().unwrap();
}

#[test]
fn smt_siblings_share_the_tmcam_budget() {
    // Two threads on one core: their combined footprint is capped at 64,
    // and the sibling's share is released the moment it commits.
    let htm = Htm::new(
        HtmConfig { cores: 1, smt: 2, ..HtmConfig::default() },
        ((2 * LINES + 8) * WORDS_PER_LINE as u64) as usize,
    );
    let mut a = htm.register_thread();
    let mut b = htm.register_thread();

    a.begin(TxMode::Htm);
    for i in 0..40 {
        a.write(line_addr(i), 1).unwrap();
    }
    b.begin(TxMode::Htm);
    for i in 40..LINES {
        b.write(line_addr(i), 1).unwrap();
    }
    // 40 + 24 = 64: the core's TMCAM is full, so b's next distinct line
    // overflows even though b itself holds far fewer than 64 entries.
    assert_eq!(b.write(line_addr(LINES), 1), Err(AbortReason::Capacity));
    a.commit().unwrap();
    // With a's 40 entries released, the same footprint now fits.
    b.begin(TxMode::Htm);
    for i in 40..=LINES {
        b.write(line_addr(i), 1).unwrap();
    }
    b.commit().unwrap();
}

#[test]
fn threads_on_different_cores_have_independent_budgets() {
    // Scatter pinning puts tids 0 and 1 on different cores: both can fill
    // all 64 lines of their own TMCAM simultaneously.
    let htm = Htm::new(
        HtmConfig { cores: 2, smt: 1, ..HtmConfig::default() },
        ((2 * LINES) * WORDS_PER_LINE as u64) as usize,
    );
    let mut a = htm.register_thread();
    let mut b = htm.register_thread();
    a.begin(TxMode::Htm);
    b.begin(TxMode::Htm);
    for i in 0..LINES {
        a.write(line_addr(i), 1).unwrap();
        b.write(line_addr(LINES + i), 2).unwrap();
    }
    assert_eq!(a.tmcam_footprint(), LINES);
    assert_eq!(b.tmcam_footprint(), LINES);
    a.commit().unwrap();
    b.commit().unwrap();
}

#[test]
fn rot_reads_are_untracked_by_default() {
    // The paper's model (rot_read_tracking = 0): a ROT can read far past
    // the TMCAM size because reads consume no entries; only its writes do.
    let cfg = HtmConfig { cores: 1, smt: 1, ..HtmConfig::default() };
    let htm = Htm::new(cfg, (4 * LINES * WORDS_PER_LINE as u64) as usize);
    let mut t = htm.register_thread();
    t.begin(TxMode::Rot);
    for i in 0..3 * LINES {
        t.read(line_addr(i)).unwrap();
    }
    assert_eq!(t.tmcam_footprint(), 0, "ROT reads must not consume TMCAM entries");
    t.write(line_addr(0), 7).unwrap();
    assert_eq!(t.tmcam_footprint(), 1);
    t.commit().unwrap();
}

#[test]
fn rot_read_tracking_fraction_consumes_proportional_capacity() {
    // Footnote 1: "the TMCAM can also track a small fraction of reads in a
    // ROT". With fraction f over L distinct lines the expected footprint
    // is f*L; sampling is deterministic per line, so the footprint is
    // reproducible run to run.
    const READ_LINES: u64 = 240;
    let cfg = HtmConfig {
        cores: 1,
        smt: 1,
        tmcam_lines: 256,
        rot_read_tracking: 0.125,
        ..HtmConfig::default()
    };
    let htm = Htm::new(cfg.clone(), ((READ_LINES + 8) * WORDS_PER_LINE as u64) as usize);
    let mut t = htm.register_thread();
    t.begin(TxMode::Rot);
    for i in 0..READ_LINES {
        t.read(line_addr(i)).unwrap();
    }
    let tracked = t.tmcam_footprint();
    // Expected 30 (0.125 * 240); accept a generous band around it, but
    // reject both "tracks nothing" and "tracks everything".
    assert!(
        (8..=80).contains(&tracked),
        "~12.5% of {READ_LINES} read lines should be tracked, got {tracked}"
    );
    t.commit().unwrap();

    // Determinism of the per-line sampling: a second identical machine
    // tracks exactly the same count.
    let htm2 = Htm::new(cfg, ((READ_LINES + 8) * WORDS_PER_LINE as u64) as usize);
    let mut t2 = htm2.register_thread();
    t2.begin(TxMode::Rot);
    for i in 0..READ_LINES {
        t2.read(line_addr(i)).unwrap();
    }
    assert_eq!(t2.tmcam_footprint(), tracked);
    t2.commit().unwrap();
}

#[test]
fn rot_tracked_reads_can_capacity_abort() {
    // With a high tracked fraction and a tiny TMCAM, a read-only ROT scan
    // overflows — the failure mode footnote 1 warns about.
    let cfg = HtmConfig {
        cores: 1,
        smt: 1,
        tmcam_lines: 8,
        rot_read_tracking: 0.5,
        ..HtmConfig::default()
    };
    let htm = Htm::new(cfg, 64 * WORDS_PER_LINE);
    let mut t = htm.register_thread();
    t.begin(TxMode::Rot);
    let mut err = None;
    for i in 0..64u64 {
        if let Err(e) = t.read(line_addr(i)) {
            err = Some(e);
            break;
        }
    }
    assert_eq!(err, Some(AbortReason::Capacity), "half-tracked ROT reads must overflow 8 lines");
}
