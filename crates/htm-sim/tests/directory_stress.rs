//! Multi-thread stress tests aimed specifically at the lock-free conflict
//! directory: concurrent writers and HTM-mode readers hammering a small set
//! of overlapping lines, checking that no registration is lost, that stale
//! incarnations never kill fresh transactions (ABA defence in the packed
//! ownership words), and that the table drains completely once every
//! thread is done.

use htm_sim::{AbortReason, Htm, HtmConfig, TxMode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// N updaters increment disjoint counters that share cache lines with the
/// counters of other threads, while M HTM readers sum them. Serializability
/// of the per-counter increments (no lost updates) exercises the
/// writer-claim CAS; the readers exercise the tracked-reader registration
/// handshake against those claims.
#[test]
fn writers_and_htm_readers_on_overlapping_lines() {
    let htm = Htm::new(HtmConfig { cores: 2, smt: 4, ..HtmConfig::default() }, 16 * 4);
    let writers = 4;
    let readers = 2;
    let per = 150;
    let reads_done = AtomicU64::new(0);

    crossbeam_utils::thread::scope(|s| {
        for w in 0..writers {
            let htm = Arc::clone(&htm);
            s.spawn(move |_| {
                let mut t = htm.register_thread();
                // Thread w owns word w of every line; all words of a line
                // conflict with each other.
                let mut done = 0;
                while done < per {
                    t.begin(TxMode::Htm);
                    let addr = (done % 4) * 16 + w as u64;
                    let ok = (|| {
                        let v = t.read(addr)?;
                        t.write(addr, v + 1)?;
                        Ok::<_, AbortReason>(())
                    })();
                    if ok.is_ok() && t.commit().is_ok() {
                        done += 1;
                    }
                }
            });
        }
        for _ in 0..readers {
            let htm = Arc::clone(&htm);
            let reads_done = &reads_done;
            s.spawn(move |_| {
                let mut t = htm.register_thread();
                let mut done = 0;
                while done < per {
                    t.begin(TxMode::Htm);
                    let ok = (|| {
                        let mut sum = 0;
                        for line in 0..4u64 {
                            for word in 0..writers as u64 {
                                sum += t.read(line * 16 + word)?;
                            }
                        }
                        Ok::<_, AbortReason>(sum)
                    })();
                    match ok {
                        Ok(_) if t.commit().is_ok() => done += 1,
                        _ => {}
                    }
                }
                reads_done.fetch_add(done, Ordering::Relaxed);
            });
        }
    })
    .unwrap();

    // No lost increments: every thread's counter column sums to `per`
    // spread over the 4 lines.
    for w in 0..writers as u64 {
        let total: u64 = (0..4u64).map(|line| htm.memory().load(line * 16 + w)).sum();
        assert_eq!(total, per, "lost updates in column {w}");
    }
    assert_eq!(reads_done.load(Ordering::Relaxed), readers * per);
    // Every registration was released: the ownership table fully drained.
    assert_eq!(htm.directory().tracked_lines(), 0, "leaked directory registrations");
}

/// Rapid-fire tiny transactions on one line from every thread: each commit
/// bumps the thread's incarnation, so any ABA confusion between an old
/// registration and a new transaction would surface as a lost update or a
/// spurious kill of a fresh incarnation.
///
/// The transactions are regular HTM mode on purpose: a read-modify-write
/// under `TxMode::Rot` is *not* serializable — ROT reads are untracked, so
/// two ROTs that both read before either claims the writer word commit
/// stacked on the same base (the paper's Fig. 2A semantics; see
/// `rot_write_after_read_is_tolerated` in `txn.rs`). Only tracked reads
/// make the increment-counter expectation sound.
#[test]
fn incarnation_turnover_on_a_single_hot_line() {
    let htm = Htm::new(HtmConfig { cores: 2, smt: 4, ..HtmConfig::default() }, 16);
    let threads = 6;
    let per = 200;

    crossbeam_utils::thread::scope(|s| {
        for _ in 0..threads {
            let htm = Arc::clone(&htm);
            s.spawn(move |_| {
                let mut t = htm.register_thread();
                let mut done = 0;
                while done < per {
                    t.begin(TxMode::Htm);
                    let ok = (|| {
                        let v = t.read(0)?;
                        t.write(0, v + 1)?;
                        Ok::<_, AbortReason>(())
                    })();
                    if ok.is_ok() && t.commit().is_ok() {
                        done += 1;
                    }
                }
            });
        }
    })
    .unwrap();

    assert_eq!(htm.memory().load(0), (threads * per) as u64);
    assert_eq!(htm.directory().tracked_lines(), 0);
}

/// Readers spilling into the overflow side-car while a writer churns: more
/// simultaneous tracked readers than the inline `reader0` slot can hold,
/// racing registration/unregistration against writer kills.
#[test]
fn reader_overflow_under_writer_churn() {
    let htm = Htm::new(HtmConfig { cores: 2, smt: 4, ..HtmConfig::default() }, 16);
    let readers = 5;
    let per = 120;
    let committed_reads = AtomicU64::new(0);

    crossbeam_utils::thread::scope(|s| {
        // One writer repeatedly updating line 0.
        let whtm = Arc::clone(&htm);
        s.spawn(move |_| {
            let mut t = whtm.register_thread();
            let mut done = 0;
            while done < per {
                t.begin(TxMode::Rot);
                if t.write(0, done + 1).is_ok() && t.commit().is_ok() {
                    done += 1;
                }
            }
        });
        // Five HTM readers tracking the same line simultaneously.
        for _ in 0..readers {
            let htm = Arc::clone(&htm);
            let committed_reads = &committed_reads;
            s.spawn(move |_| {
                let mut t = htm.register_thread();
                let mut done = 0;
                while done < per {
                    t.begin(TxMode::Htm);
                    if t.read(0).is_ok() && t.commit().is_ok() {
                        done += 1;
                    }
                }
                committed_reads.fetch_add(done, Ordering::Relaxed);
            });
        }
    })
    .unwrap();

    assert_eq!(htm.memory().load(0), per, "writer finished all rounds");
    assert_eq!(committed_reads.load(Ordering::Relaxed), readers * per);
    assert_eq!(htm.directory().tracked_lines(), 0, "overflow side-car drained");
}
