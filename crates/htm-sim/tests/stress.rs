//! Multi-threaded stress and behavioural tests of the P8-HTM simulator.
//!
//! The machine-level tests honour `HTM_SIM_DIR=locked|lockfree` and
//! `HTM_SIM_PIN=scatter|pack`, so the suite can be re-run against the
//! alternative conflict directory and the adversarial pinning layout:
//! `HTM_SIM_DIR=locked HTM_SIM_PIN=pack cargo test -p htm-sim --test stress`.

use htm_sim::{AbortReason, Htm, HtmConfig, NonTxClass, TxMode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Retry helper: run a closure-transaction until it commits.
fn run_tx(
    t: &mut htm_sim::HtmThread,
    mode: TxMode,
    mut body: impl FnMut(&mut htm_sim::HtmThread) -> Result<(), AbortReason>,
) {
    loop {
        t.begin(mode);
        match body(t) {
            Ok(()) => {
                if t.commit().is_ok() {
                    return;
                }
            }
            Err(_) => { /* engine tore the tx down; retry */ }
        }
    }
}

#[test]
fn htm_mode_counters_never_lose_updates() {
    // Regular (tracked-read) transactions over shared lines: serializable,
    // so no increment may be lost.
    let htm = Htm::new(HtmConfig { cores: 2, smt: 4, ..HtmConfig::default() }.apply_env(), 16 * 8);
    let threads = 6;
    let per = 250u64;
    crossbeam_utils::thread::scope(|s| {
        for _ in 0..threads {
            let htm = Arc::clone(&htm);
            s.spawn(move |_| {
                let mut t = htm.register_thread();
                for n in 0..per {
                    let line = (n % 4) * 16;
                    run_tx(&mut t, TxMode::Htm, |t| {
                        let v = t.read(line)?;
                        t.write(line, v + 1)
                    });
                }
            });
        }
    })
    .unwrap();
    let total: u64 = (0..4u64).map(|l| htm.memory().load(l * 16)).sum();
    assert_eq!(total, threads as u64 * per);
    assert_eq!(htm.directory().tracked_lines(), 0);
}

#[test]
fn raw_rot_read_modify_write_loses_updates() {
    // The documented unsafety of bare ROTs (why SI-HTM needs quiescence):
    // a ROT's read is untracked, so a concurrent writer that commits
    // between the read and the write goes undetected and its update is
    // silently overwritten. Deterministic schedule, single OS thread.
    let htm = Htm::new(HtmConfig::small().apply_env(), 256);
    let mut a = htm.register_thread();
    let mut b = htm.register_thread();

    a.begin(TxMode::Rot);
    let v = a.read(0).unwrap(); // v = 0, untracked
                                // b increments and commits immediately (no quiescence at this layer).
    b.begin(TxMode::Rot);
    let w = b.read(0).unwrap();
    b.write(0, w + 1).unwrap();
    b.commit().unwrap();
    assert_eq!(htm.memory().load(0), 1);
    // a's stale write goes through: ROT detects no conflict.
    a.write(0, v + 1).unwrap();
    a.commit().unwrap();
    assert_eq!(htm.memory().load(0), 1, "b's increment was lost — as real ROTs lose it");
}

#[test]
fn multi_line_commits_are_atomic_under_transactional_readers() {
    // A writer commits N-line batches where all words carry the same
    // stamp; HTM-mode readers (tracked, so they conflict rather than
    // race) must always observe a uniform batch.
    const LINES: u64 = 4;
    let htm = Htm::new(HtmConfig { cores: 2, smt: 2, ..HtmConfig::default() }.apply_env(), 16 * 8);
    let stop = Arc::new(AtomicU64::new(0));

    crossbeam_utils::thread::scope(|s| {
        let hw = Arc::clone(&htm);
        let stop_w = Arc::clone(&stop);
        s.spawn(move |_| {
            let mut t = hw.register_thread();
            for stamp in 1..400u64 {
                run_tx(&mut t, TxMode::Rot, |t| {
                    for l in 0..LINES {
                        t.write(l * 16, stamp)?;
                    }
                    Ok(())
                });
            }
            stop_w.store(1, Ordering::Release);
        });

        for _ in 0..2 {
            let hr = Arc::clone(&htm);
            let stop_r = Arc::clone(&stop);
            s.spawn(move |_| {
                let mut t = hr.register_thread();
                while stop_r.load(Ordering::Acquire) == 0 {
                    let mut vals = [0u64; LINES as usize];
                    run_tx(&mut t, TxMode::Htm, |t| {
                        for l in 0..LINES {
                            vals[l as usize] = t.read(l * 16)?;
                        }
                        Ok(())
                    });
                    let first = vals[0];
                    assert!(vals.iter().all(|v| *v == first), "torn batch observed: {vals:?}");
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn rot_read_tracking_fraction_one_behaves_like_htm() {
    // Footnote 1 at its extreme: with the whole read set tracked, ROT
    // capacity degenerates to regular-HTM capacity.
    let cfg = HtmConfig {
        cores: 1,
        smt: 1,
        tmcam_lines: 4,
        rot_read_tracking: 1.0,
        ..HtmConfig::default()
    };
    let htm = Htm::new(cfg, 16 * 16);
    let mut t = htm.register_thread();
    t.begin(TxMode::Rot);
    let mut err = None;
    for i in 0..10u64 {
        if let Err(e) = t.read(i * 16) {
            err = Some(e);
            break;
        }
    }
    assert_eq!(err, Some(AbortReason::Capacity), "fully-tracked ROT reads must overflow");
}

#[test]
fn rot_read_tracking_fraction_partial_tracks_some_lines() {
    let cfg = HtmConfig {
        cores: 1,
        smt: 1,
        tmcam_lines: 64,
        rot_read_tracking: 0.25,
        ..HtmConfig::default()
    };
    let htm = Htm::new(cfg, 16 * 256);
    let mut t = htm.register_thread();
    t.begin(TxMode::Rot);
    for i in 0..200u64 {
        t.read(i * 16).unwrap();
    }
    let tracked = t.tmcam_footprint();
    assert!(
        (10..=90).contains(&tracked),
        "~25% of 200 read lines should be tracked, got {tracked}"
    );
    t.commit().unwrap();
}

#[test]
fn smt_capacity_pressure_eases_when_neighbours_commit() {
    // Two SMT threads on one core; the second can only fit its write set
    // after the first released the TMCAM.
    let htm =
        Htm::new(HtmConfig { cores: 1, smt: 2, tmcam_lines: 8, ..HtmConfig::default() }, 16 * 32);
    let mut a = htm.register_thread();
    let mut b = htm.register_thread();

    a.begin(TxMode::Rot);
    for i in 0..6u64 {
        a.write(i * 16, 1).unwrap();
    }
    b.begin(TxMode::Rot);
    for i in 6..8u64 {
        b.write(i * 16, 1).unwrap();
    }
    assert_eq!(b.write(8 * 16, 1), Err(AbortReason::Capacity), "shared TMCAM full");
    a.commit().unwrap();
    // Fresh attempt now fits: the neighbour's entries were released.
    b.begin(TxMode::Rot);
    for i in 6..12u64 {
        b.write(i * 16, 1).unwrap();
    }
    b.commit().unwrap();
}

#[test]
fn nontx_writes_do_not_corrupt_transactional_lines() {
    // A non-transactional writer hammers line A (killing whatever reads
    // it) while transactions increment line B; B must stay exact and A
    // must end at the last non-tx value. Transactions that also *read* A
    // get killed and retried, which is the point.
    const A: u64 = 0;
    const B: u64 = 16;
    let htm = Htm::new(HtmConfig { cores: 2, smt: 2, ..HtmConfig::default() }.apply_env(), 64);
    let tx_done = AtomicU64::new(0);
    crossbeam_utils::thread::scope(|s| {
        {
            let htm = Arc::clone(&htm);
            let tx_done = &tx_done;
            s.spawn(move |_| {
                let mut t = htm.register_thread();
                let mut n = 0u64;
                while tx_done.load(Ordering::Acquire) < 2 {
                    n += 1;
                    t.write_notx(A, n, NonTxClass::Sgl);
                }
                t.write_notx(A, 424_242, NonTxClass::Sgl);
            });
        }
        for _ in 0..2 {
            let htm = Arc::clone(&htm);
            let tx_done = &tx_done;
            s.spawn(move |_| {
                let mut t = htm.register_thread();
                for _ in 0..300 {
                    run_tx(&mut t, TxMode::Htm, |t| {
                        let _a = t.read(A)?; // puts us in the kill zone
                        let v = t.read(B)?;
                        t.write(B, v + 1)
                    });
                }
                tx_done.fetch_add(1, Ordering::AcqRel);
            });
        }
    })
    .unwrap();
    assert_eq!(htm.memory().load(B), 600, "transactional increments lost");
    assert_eq!(htm.memory().load(A), 424_242);
    assert_eq!(htm.directory().tracked_lines(), 0);
}
