//! Property-based tests of the transactional data structures against
//! reference models (`std::collections`): random operation sequences must
//! produce exactly the same observable state, and the structures' own
//! invariant audits must hold after every sequence.

use proptest::prelude::*;
use si_htm::SiHtm;
use std::collections::BTreeMap;
use tm_api::{TmBackend, TmThread, TxKind};
use txmem::LineAlloc;
use workloads::btree::{memory_words, NodeScratch, TxBTree};
use workloads::hashmap::{HashMapConfig, TxHashMap};

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Lookup(u64),
    Range(u64, u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = MapOp> {
    let key = 1..=key_space;
    prop_oneof![
        3 => (key.clone(), 1..1000u64).prop_map(|(k, v)| MapOp::Insert(k, v)),
        2 => key.clone().prop_map(MapOp::Remove),
        3 => key.clone().prop_map(MapOp::Lookup),
        1 => (key, 1..32u64).prop_map(|(k, n)| MapOp::Range(k, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The B+-tree agrees with `BTreeMap` on every operation of a random
    /// sequence, and its structural audit passes afterwards.
    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec(op_strategy(64), 1..250)) {
        let words = memory_words(4096);
        let backend = SiHtm::with_defaults(words);
        let alloc = LineAlloc::new(0, words as u64);
        let tree = TxBTree::build(backend.memory(), &alloc, 0..0);
        let mut t = backend.register_thread();
        let mut scratch = NodeScratch::new(&alloc);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        for op in &ops {
            match *op {
                MapOp::Insert(k, v) => {
                    let mut inserted = false;
                    t.exec(TxKind::Update, &mut |tx| {
                        scratch.reset();
                        inserted = tree.insert(tx, k, v, &mut scratch)?;
                        Ok(())
                    });
                    scratch.refill(&alloc);
                    prop_assert_eq!(inserted, model.insert(k, v).is_none());
                }
                MapOp::Remove(k) => {
                    let mut removed = false;
                    t.exec(TxKind::Update, &mut |tx| {
                        removed = tree.remove(tx, k)?;
                        Ok(())
                    });
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                MapOp::Lookup(k) => {
                    let mut found = None;
                    t.exec(TxKind::ReadOnly, &mut |tx| {
                        found = tree.lookup(tx, k)?;
                        Ok(())
                    });
                    prop_assert_eq!(found, model.get(&k).copied());
                }
                MapOp::Range(from, n) => {
                    let mut got = (0, 0);
                    t.exec(TxKind::ReadOnly, &mut |tx| {
                        got = tree.range(tx, from, n)?;
                        Ok(())
                    });
                    let expect: Vec<u64> =
                        model.range(from..).take(n as usize).map(|(_, v)| *v).collect();
                    prop_assert_eq!(got.0, expect.len() as u64);
                    prop_assert_eq!(got.1, expect.iter().fold(0u64, |a, v| a.wrapping_add(*v)));
                }
            }
        }
        let keys = tree.audit(backend.memory());
        let expect: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(keys, expect);
    }

    /// The hash map agrees with `BTreeMap` over random insert/remove/lookup
    /// sequences (fresh nodes provisioned per insert, recycled on remove).
    #[test]
    fn hashmap_matches_model(ops in proptest::collection::vec(op_strategy(48), 1..250)) {
        let cfg = HashMapConfig { buckets: 8, chain: 0, ro_fraction: 0.0 };
        let backend = SiHtm::with_defaults(cfg.memory_words(1) + 16 * 600);
        let (map, alloc) = TxHashMap::build(backend.memory(), &cfg);
        let mut t = backend.register_thread();
        let mut free: Vec<u64> = Vec::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        for op in &ops {
            match *op {
                MapOp::Insert(k, v) => {
                    let node = free.pop().unwrap_or_else(|| alloc.alloc_lines(1));
                    let mut inserted = false;
                    t.exec(TxKind::Update, &mut |tx| {
                        inserted = map.insert(tx, k, v, node)?;
                        Ok(())
                    });
                    if !inserted {
                        free.push(node);
                    }
                    prop_assert_eq!(inserted, model.insert(k, v).is_none());
                }
                MapOp::Remove(k) => {
                    let mut removed = None;
                    t.exec(TxKind::Update, &mut |tx| {
                        removed = map.remove(tx, k)?;
                        Ok(())
                    });
                    if let Some(node) = removed {
                        free.push(node);
                    }
                    prop_assert_eq!(removed.is_some(), model.remove(&k).is_some());
                }
                MapOp::Lookup(k) | MapOp::Range(k, _) => {
                    let mut found = None;
                    t.exec(TxKind::ReadOnly, &mut |tx| {
                        found = map.lookup(tx, k)?;
                        Ok(())
                    });
                    prop_assert_eq!(found, model.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(map.count(backend.memory()), model.len() as u64);
    }
}
