//! Workload drivers for the SI-HTM evaluation.
//!
//! * [`driver`] — the multi-threaded, fixed-duration run harness (warm-up,
//!   measurement, abort accounting) shared by every experiment;
//! * [`hashmap`] — the transactional hash-map micro-benchmark of §4.1
//!   (lookup / insert / remove over per-bucket linked lists, with the
//!   paper's footprint and contention knobs);
//! * [`bank`] — a classic bank-accounts workload (transfers + full-sweep
//!   audits) used by the examples and the SI-semantics integration tests;
//! * [`btree`] — a transactional B+-tree (point ops + leaf-chain range
//!   scans), the index-structure workload of the IMDB setting.

pub mod bank;
pub mod btree;
pub mod driver;
pub mod hashmap;

pub use btree::{BTreeWorker, TxBTree};
pub use driver::{run, RunConfig, RunReport};
pub use hashmap::{HashMapConfig, HashMapWorker, TxHashMap};
