//! The transactional hash-map micro-benchmark of §4.1.
//!
//! A fixed array of bucket heads, one per cache line, each heading a
//! singly-linked list of nodes (one cache line per node: `[key, value,
//! next]`). Clients perform:
//!
//! * **lookup** (read-only): traverse the key's bucket — the read footprint
//!   is the traversed chain, ~`chain/2` lines on a hit;
//! * **insert** (update): traverse to the tail and link a fresh node —
//!   unbounded read footprint, *two* written lines;
//! * **remove** (update): traverse to the key and unlink — one written line.
//!
//! The paper's knobs map directly:
//!
//! * *transaction footprint*: average chain length (≈200 "large", ≈50
//!   "small") — large chains overflow the 64-line TMCAM for any backend
//!   that tracks reads;
//! * *contention*: number of buckets (1000 "low", 10 "high");
//! * *mix*: fraction of read-only transactions (90 % or 50 %).
//!
//! Each worker thread alternates insert(k)/remove(k) on fresh keys (the
//! paper: "a remove operation if the last transaction on that thread was
//! an insert"), keeping the map size stationary. Nodes freed by committed
//! removes are recycled through a per-thread free list.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tm_api::{Abort, Outcome, TmThread, Tx, TxKind};
use txmem::{Addr, LineAlloc, TxMemory, WORDS_PER_LINE};

/// Benchmark parameters (§4.1).
#[derive(Debug, Clone)]
pub struct HashMapConfig {
    /// Number of buckets (contention knob: 1000 = low, 10 = high).
    pub buckets: u64,
    /// Initial average chain length (footprint knob: 200 = large, 50 = small).
    pub chain: u64,
    /// Fraction of read-only (lookup) transactions.
    pub ro_fraction: f64,
}

impl HashMapConfig {
    /// A scenario straight from the paper's grid.
    pub fn paper(large_footprint: bool, ro_fraction: f64, high_contention: bool) -> Self {
        HashMapConfig {
            buckets: if high_contention { 10 } else { 1000 },
            chain: if large_footprint { 200 } else { 50 },
            ro_fraction,
        }
    }

    /// Keys present after population (`1..=initial_keys`).
    pub fn initial_keys(&self) -> u64 {
        self.buckets * self.chain
    }

    /// Memory words needed, with allocation headroom for `threads` workers.
    pub fn memory_words(&self, threads: usize) -> usize {
        let nodes = self.initial_keys() + threads as u64 * 4 + 64;
        ((self.buckets + nodes) * WORDS_PER_LINE as u64) as usize
    }
}

/// Node field offsets (one node per cache line).
const F_KEY: u64 = 0;
const F_VAL: u64 = 1;
const F_NEXT: u64 = 2;
/// Null next-pointer / empty bucket marker.
const NIL: u64 = 0;

/// Handle to a hash map laid out in simulated memory. `Copy` so closures
/// can capture it freely.
#[derive(Debug, Clone, Copy)]
pub struct TxHashMap {
    heads: Addr,
    buckets: u64,
}

impl TxHashMap {
    /// Lay out and populate a map: bucket-head lines at the front of the
    /// arena, then `cfg.initial_keys()` nodes holding keys
    /// `1..=initial_keys` (value = key). Returns the map handle and the
    /// node allocator for subsequent inserts.
    pub fn build(memory: &TxMemory, cfg: &HashMapConfig) -> (TxHashMap, Arc<LineAlloc>) {
        let heads = 0;
        let arena_base = cfg.buckets * WORDS_PER_LINE as u64;
        assert!(memory.len() as u64 > arena_base, "memory too small for {} buckets", cfg.buckets);
        let alloc = LineAlloc::new(arena_base, memory.len() as u64 - arena_base);
        let map = TxHashMap { heads, buckets: cfg.buckets };
        for key in 1..=cfg.initial_keys() {
            let node = alloc.alloc_lines(1);
            let head = map.head_addr(key);
            memory.store(node + F_KEY, key);
            memory.store(node + F_VAL, key);
            memory.store(node + F_NEXT, memory.load(head));
            memory.store(head, node);
        }
        (map, Arc::new(alloc))
    }

    #[inline]
    fn head_addr(&self, key: u64) -> Addr {
        self.heads + (key % self.buckets) * WORDS_PER_LINE as u64
    }

    /// Transactional lookup.
    pub fn lookup(&self, tx: &mut dyn Tx, key: u64) -> Result<Option<u64>, Abort> {
        let mut cur = tx.read(self.head_addr(key))?;
        while cur != NIL {
            if tx.read(cur + F_KEY)? == key {
                return Ok(Some(tx.read(cur + F_VAL)?));
            }
            cur = tx.read(cur + F_NEXT)?;
        }
        Ok(None)
    }

    /// Transactional insert at the chain tail, using the caller-provided
    /// `node` line. Returns `true` if inserted, `false` if the key existed
    /// (value updated in place; `node` stays unused and reusable).
    pub fn insert(&self, tx: &mut dyn Tx, key: u64, value: u64, node: Addr) -> Result<bool, Abort> {
        tx.write(node + F_KEY, key)?;
        tx.write(node + F_VAL, value)?;
        tx.write(node + F_NEXT, NIL)?;
        let head = self.head_addr(key);
        let mut cur = tx.read(head)?;
        if cur == NIL {
            tx.write(head, node)?;
            return Ok(true);
        }
        loop {
            if tx.read(cur + F_KEY)? == key {
                tx.write(cur + F_VAL, value)?;
                return Ok(false);
            }
            let next = tx.read(cur + F_NEXT)?;
            if next == NIL {
                tx.write(cur + F_NEXT, node)?;
                return Ok(true);
            }
            cur = next;
        }
    }

    /// Transactional remove. Returns the unlinked node's address (for
    /// recycling) or `None` when the key is absent.
    pub fn remove(&self, tx: &mut dyn Tx, key: u64) -> Result<Option<Addr>, Abort> {
        let head = self.head_addr(key);
        let mut prev: Option<Addr> = None;
        let mut cur = tx.read(head)?;
        while cur != NIL {
            let next = tx.read(cur + F_NEXT)?;
            if tx.read(cur + F_KEY)? == key {
                match prev {
                    None => tx.write(head, next)?,
                    Some(p) => tx.write(p + F_NEXT, next)?,
                }
                return Ok(Some(cur));
            }
            prev = Some(cur);
            cur = next;
        }
        Ok(None)
    }

    /// Non-transactional full count (validation between runs).
    pub fn count(&self, memory: &TxMemory) -> u64 {
        let mut n = 0;
        for b in 0..self.buckets {
            let mut cur = memory.load(self.heads + b * WORDS_PER_LINE as u64);
            while cur != NIL {
                n += 1;
                cur = memory.load(cur + F_NEXT);
            }
        }
        n
    }
}

/// Per-thread benchmark client implementing the paper's operation mix.
pub struct HashMapWorker {
    map: TxHashMap,
    cfg: HashMapConfig,
    alloc: Arc<LineAlloc>,
    rng: SmallRng,
    /// Next fresh key this thread will insert (strided across threads so
    /// fresh keys never collide).
    next_key: u64,
    stride: u64,
    /// Key inserted by the previous update op, to be removed by the next.
    pending_remove: Option<u64>,
    /// Recycled node lines from committed removes.
    free: Vec<Addr>,
}

impl HashMapWorker {
    pub fn new(
        map: TxHashMap,
        cfg: HashMapConfig,
        alloc: Arc<LineAlloc>,
        thread_index: usize,
        total_threads: usize,
    ) -> Self {
        let base = cfg.initial_keys() + 1 + thread_index as u64;
        HashMapWorker {
            map,
            cfg,
            alloc,
            rng: SmallRng::seed_from_u64(0x5EED ^ thread_index as u64),
            next_key: base,
            stride: total_threads as u64,
            pending_remove: None,
            free: Vec::new(),
        }
    }

    /// Execute one benchmark transaction on `thread`.
    pub fn run_op<T: TmThread>(&mut self, thread: &mut T) {
        if self.rng.gen::<f64>() < self.cfg.ro_fraction {
            // Read-only lookup of a (most likely present) key.
            let key = self.rng.gen_range(1..=self.cfg.initial_keys());
            let map = self.map;
            thread.exec(TxKind::ReadOnly, &mut |tx| {
                map.lookup(tx, key)?;
                Ok(())
            });
        } else if let Some(key) = self.pending_remove.take() {
            let map = self.map;
            let mut removed = None;
            let out = thread.exec(TxKind::Update, &mut |tx| {
                removed = map.remove(tx, key)?;
                Ok(())
            });
            if out == Outcome::Committed {
                if let Some(node) = removed {
                    self.free.push(node);
                }
            }
        } else {
            let key = self.next_key;
            self.next_key += self.stride;
            let node = self.free.pop().unwrap_or_else(|| self.alloc.alloc_lines(1));
            let map = self.map;
            let mut inserted = false;
            let out = thread.exec(TxKind::Update, &mut |tx| {
                inserted = map.insert(tx, key, key, node)?;
                Ok(())
            });
            if out == Outcome::Committed {
                if !inserted {
                    self.free.push(node); // key existed; line unused
                }
                self.pending_remove = Some(key);
            } else {
                self.free.push(node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, RunConfig};
    use si_htm::SiHtm;
    use tm_api::TmBackend;

    fn tiny_cfg() -> HashMapConfig {
        HashMapConfig { buckets: 4, chain: 3, ro_fraction: 0.5 }
    }

    #[test]
    fn build_populates_all_keys() {
        let cfg = tiny_cfg();
        let backend = SiHtm::with_defaults(cfg.memory_words(1));
        let (map, _alloc) = TxHashMap::build(backend.memory(), &cfg);
        assert_eq!(map.count(backend.memory()), cfg.initial_keys());
        let mut t = backend.register_thread();
        for key in 1..=cfg.initial_keys() {
            let mut found = None;
            t.exec(TxKind::ReadOnly, &mut |tx| {
                found = map.lookup(tx, key)?;
                Ok(())
            });
            assert_eq!(found, Some(key));
        }
    }

    #[test]
    fn lookup_miss_returns_none() {
        let cfg = tiny_cfg();
        let backend = SiHtm::with_defaults(cfg.memory_words(1));
        let (map, _alloc) = TxHashMap::build(backend.memory(), &cfg);
        let mut t = backend.register_thread();
        let mut found = Some(0);
        t.exec(TxKind::ReadOnly, &mut |tx| {
            found = map.lookup(tx, 9999)?;
            Ok(())
        });
        assert_eq!(found, None);
    }

    #[test]
    fn insert_then_remove_roundtrip() {
        let cfg = tiny_cfg();
        let backend = SiHtm::with_defaults(cfg.memory_words(1));
        let (map, alloc) = TxHashMap::build(backend.memory(), &cfg);
        let mut t = backend.register_thread();
        let key = cfg.initial_keys() + 7;
        let node = alloc.alloc_lines(1);

        let mut inserted = false;
        t.exec(TxKind::Update, &mut |tx| {
            inserted = map.insert(tx, key, 42, node)?;
            Ok(())
        });
        assert!(inserted);
        assert_eq!(map.count(backend.memory()), cfg.initial_keys() + 1);

        let mut found = None;
        t.exec(TxKind::ReadOnly, &mut |tx| {
            found = map.lookup(tx, key)?;
            Ok(())
        });
        assert_eq!(found, Some(42));

        let mut removed = None;
        t.exec(TxKind::Update, &mut |tx| {
            removed = map.remove(tx, key)?;
            Ok(())
        });
        assert_eq!(removed, Some(node));
        assert_eq!(map.count(backend.memory()), cfg.initial_keys());
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let cfg = tiny_cfg();
        let backend = SiHtm::with_defaults(cfg.memory_words(1));
        let (map, alloc) = TxHashMap::build(backend.memory(), &cfg);
        let mut t = backend.register_thread();
        let node = alloc.alloc_lines(1);
        let mut inserted = true;
        t.exec(TxKind::Update, &mut |tx| {
            inserted = map.insert(tx, 1, 777, node)?;
            Ok(())
        });
        assert!(!inserted, "key 1 pre-exists");
        let mut found = None;
        t.exec(TxKind::ReadOnly, &mut |tx| {
            found = map.lookup(tx, 1)?;
            Ok(())
        });
        assert_eq!(found, Some(777));
        assert_eq!(map.count(backend.memory()), cfg.initial_keys());
    }

    #[test]
    fn remove_middle_of_chain_preserves_rest() {
        // Keys 1,5,9 share bucket 1 (buckets=4). Remove the middle one.
        let cfg = tiny_cfg();
        let backend = SiHtm::with_defaults(cfg.memory_words(1));
        let (map, _alloc) = TxHashMap::build(backend.memory(), &cfg);
        let mut t = backend.register_thread();
        let mut removed = None;
        t.exec(TxKind::Update, &mut |tx| {
            removed = map.remove(tx, 5)?;
            Ok(())
        });
        assert!(removed.is_some());
        for key in [1u64, 9] {
            let mut found = None;
            t.exec(TxKind::ReadOnly, &mut |tx| {
                found = map.lookup(tx, key)?;
                Ok(())
            });
            assert_eq!(found, Some(key), "key {key} lost by middle removal");
        }
    }

    #[test]
    fn worker_mix_keeps_size_stationary() {
        let cfg = HashMapConfig { buckets: 8, chain: 4, ro_fraction: 0.5 };
        let backend = SiHtm::with_defaults(cfg.memory_words(2));
        let (map, alloc) = TxHashMap::build(backend.memory(), &cfg);
        let report = run(&backend, &RunConfig::quick(2), |i| {
            let mut w = HashMapWorker::new(map, cfg.clone(), Arc::clone(&alloc), i, 2);
            move |t: &mut si_htm::SiHtmThread| w.run_op(t)
        });
        assert!(report.total.commits > 0);
        // Size may differ by at most one in-flight insert per thread.
        let n = map.count(backend.memory());
        let base = cfg.initial_keys();
        assert!(n >= base.saturating_sub(2) && n <= base + 2, "size drifted: {n} vs {base}");
    }

    #[test]
    fn paper_scenarios_have_expected_shapes() {
        let large_low = HashMapConfig::paper(true, 0.9, false);
        assert_eq!((large_low.buckets, large_low.chain), (1000, 200));
        let small_high = HashMapConfig::paper(false, 0.9, true);
        assert_eq!((small_high.buckets, small_high.chain), (10, 50));
        assert!(HashMapConfig::paper(true, 0.5, false).ro_fraction == 0.5);
    }
}
