//! Bank-accounts workload: transfers plus full-sweep audits.
//!
//! The classic TM correctness workload: `transfer` moves money between two
//! random accounts (small update transaction), `audit` sums every account
//! (read-only transaction whose footprint covers the whole table — far
//! beyond TMCAM capacity, so plain HTM must fall back while SI-HTM's
//! read-only fast path runs it for free). The global invariant — the total
//! balance never changes — doubles as a serialisation check in the
//! integration tests.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tm_api::{Abort, TmThread, Tx, TxKind};
use txmem::{Addr, TxMemory, WORDS_PER_LINE};

/// A bank of `accounts` balances, one account per cache line.
#[derive(Debug, Clone, Copy)]
pub struct Bank {
    base: Addr,
    accounts: u64,
}

impl Bank {
    /// Words of memory required.
    pub fn memory_words(accounts: u64) -> usize {
        (accounts * WORDS_PER_LINE as u64) as usize
    }

    /// Lay out the bank at `base` and give every account `initial` units.
    pub fn build(memory: &TxMemory, base: Addr, accounts: u64, initial: u64) -> Bank {
        let bank = Bank { base, accounts };
        for a in 0..accounts {
            memory.store(bank.addr(a), initial);
        }
        bank
    }

    #[inline]
    pub fn accounts(&self) -> u64 {
        self.accounts
    }

    #[inline]
    fn addr(&self, account: u64) -> Addr {
        self.base + account * WORDS_PER_LINE as u64
    }

    /// Transactional transfer; declines (without aborting) on insufficient
    /// funds.
    pub fn transfer(
        &self,
        tx: &mut dyn Tx,
        from: u64,
        to: u64,
        amount: u64,
    ) -> Result<bool, Abort> {
        let src = tx.read(self.addr(from))?;
        if src < amount {
            return Ok(false);
        }
        let dst = tx.read(self.addr(to))?;
        tx.write(self.addr(from), src - amount)?;
        tx.write(self.addr(to), dst + amount)?;
        Ok(true)
    }

    /// Transactional full-sweep audit: the sum of all balances.
    pub fn audit(&self, tx: &mut dyn Tx) -> Result<u64, Abort> {
        let mut sum = 0u64;
        for a in 0..self.accounts {
            sum += tx.read(self.addr(a))?;
        }
        Ok(sum)
    }

    /// Non-transactional sum (between runs).
    pub fn total(&self, memory: &TxMemory) -> u64 {
        (0..self.accounts).map(|a| memory.load(self.addr(a))).sum()
    }
}

/// Per-thread bank client: `audit_fraction` of transactions are audits,
/// the rest transfers between uniformly random accounts.
pub struct BankWorker {
    bank: Bank,
    audit_fraction: f64,
    rng: SmallRng,
    /// Audits whose observed total differed from `expected_total` (must
    /// stay zero under any correct backend).
    pub broken_audits: u64,
    pub expected_total: u64,
}

impl BankWorker {
    pub fn new(bank: Bank, audit_fraction: f64, expected_total: u64, seed: u64) -> Self {
        BankWorker {
            bank,
            audit_fraction,
            rng: SmallRng::seed_from_u64(seed),
            broken_audits: 0,
            expected_total,
        }
    }

    pub fn run_op<T: TmThread>(&mut self, thread: &mut T) {
        let bank = self.bank;
        if self.rng.gen::<f64>() < self.audit_fraction {
            let mut sum = 0;
            thread.exec(TxKind::ReadOnly, &mut |tx| {
                sum = bank.audit(tx)?;
                Ok(())
            });
            if sum != self.expected_total {
                self.broken_audits += 1;
            }
        } else {
            let from = self.rng.gen_range(0..bank.accounts());
            let mut to = self.rng.gen_range(0..bank.accounts());
            if to == from {
                to = (to + 1) % bank.accounts();
            }
            let amount = self.rng.gen_range(1..=10);
            thread.exec(TxKind::Update, &mut |tx| {
                bank.transfer(tx, from, to, amount)?;
                Ok(())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, RunConfig};
    use si_htm::SiHtm;
    use tm_api::TmBackend;

    #[test]
    fn transfers_conserve_total() {
        let accounts = 16;
        let backend = SiHtm::with_defaults(Bank::memory_words(accounts));
        let bank = Bank::build(backend.memory(), 0, accounts, 100);
        assert_eq!(bank.total(backend.memory()), 1600);
        let mut t = backend.register_thread();
        let mut ok = false;
        t.exec(TxKind::Update, &mut |tx| {
            ok = bank.transfer(tx, 0, 1, 30)?;
            Ok(())
        });
        assert!(ok);
        assert_eq!(backend.memory().load(0), 70);
        assert_eq!(bank.total(backend.memory()), 1600);
    }

    #[test]
    fn insufficient_funds_decline() {
        let backend = SiHtm::with_defaults(Bank::memory_words(4));
        let bank = Bank::build(backend.memory(), 0, 4, 10);
        let mut t = backend.register_thread();
        let mut ok = true;
        t.exec(TxKind::Update, &mut |tx| {
            ok = bank.transfer(tx, 0, 1, 999)?;
            Ok(())
        });
        assert!(!ok);
        assert_eq!(bank.total(backend.memory()), 40);
    }

    #[test]
    fn concurrent_audits_always_see_conserved_total() {
        let accounts = 32;
        let backend = SiHtm::with_defaults(Bank::memory_words(accounts));
        let bank = Bank::build(backend.memory(), 0, accounts, 1000);
        let total = bank.total(backend.memory());
        let broken = std::sync::Mutex::new(0u64);
        let report = run(&backend, &RunConfig::quick(3), |i| {
            let mut w = BankWorker::new(bank, 0.3, total, i as u64 + 1);
            let broken = &broken;
            move |t: &mut si_htm::SiHtmThread| {
                w.run_op(t);
                if w.broken_audits > 0 {
                    *broken.lock().unwrap() += w.broken_audits;
                    w.broken_audits = 0;
                }
            }
        });
        assert!(report.total.commits > 0);
        assert_eq!(*broken.lock().unwrap(), 0, "audit observed a torn total");
        assert_eq!(bank.total(backend.memory()), total);
    }
}
