//! Fixed-duration multi-threaded run harness.
//!
//! Mirrors the paper's run scripts: spawn N worker threads (pinned to
//! virtual hardware threads by registration order), warm up, measure for a
//! fixed wall-clock interval, and report throughput plus the aggregated
//! abort breakdown.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::time::{Duration, Instant};
use tm_api::{stats, LatencyHist, ThreadStats, TmBackend, TmThread};

/// Harness parameters.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Warm-up interval (excluded from measurement).
    pub warmup: Duration,
    /// Measurement interval.
    pub duration: Duration,
    /// Record per-operation latency into [`RunReport::latency`] (two
    /// `Instant::now()` calls per op — tens of ns against the µs-scale
    /// simulated transactions, but switchable off for the tightest
    /// micro-ablation).
    pub latency: bool,
}

impl RunConfig {
    pub fn new(threads: usize, warmup: Duration, duration: Duration) -> Self {
        RunConfig { threads, warmup, duration, latency: true }
    }

    /// Short configuration for tests.
    pub fn quick(threads: usize) -> Self {
        RunConfig::new(threads, Duration::from_millis(20), Duration::from_millis(100))
    }

    /// Disable per-op latency recording.
    pub fn without_latency(mut self) -> Self {
        self.latency = false;
        self
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub threads: usize,
    /// Measured wall-clock interval.
    pub elapsed: Duration,
    /// Aggregated statistics over the measurement interval.
    pub total: ThreadStats,
    /// Workers that never entered the measurement window (heavy
    /// over-subscription): their stats are excluded from `total`, and —
    /// rather than silently vanishing — they are counted here so a report
    /// claiming N threads of throughput also says how many of the N
    /// actually participated.
    pub starved_threads: usize,
    /// Per-operation latency over the measurement interval (one sample per
    /// completed `op` closure invocation), merged across workers. Empty
    /// when [`RunConfig::latency`] is off.
    pub latency: LatencyHist,
}

impl RunReport {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.total.commits as f64 / self.elapsed.as_secs_f64()
    }
}

const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_STOP: u8 = 2;

/// Run `setup(thread_index)`-produced operations on `cfg.threads` worker
/// threads against `backend` for the configured interval.
///
/// Each invocation of the produced closure must execute exactly one
/// complete transaction (the closure typically calls
/// [`TmThread::exec`] once); statistics are reset at the warm-up →
/// measurement transition so the report covers steady state only.
pub fn run<B, F, W>(backend: &B, cfg: &RunConfig, setup: F) -> RunReport
where
    B: TmBackend,
    F: Fn(usize) -> W + Sync,
    W: FnMut(&mut B::Thread),
{
    let phase = AtomicU8::new(PHASE_WARMUP);
    let poisoned = AtomicBool::new(false);
    let mut per_thread: Vec<ThreadStats> = Vec::with_capacity(cfg.threads);
    let mut starved_threads = 0usize;

    crossbeam_utils::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.threads);
        for i in 0..cfg.threads {
            let phase = &phase;
            let poisoned = &poisoned;
            let setup = &setup;
            handles.push(s.spawn(move |_| {
                // Declared before `thread` so the backend thread's own Drop
                // (abort in-flight txn, release SGL, clear state entry) runs
                // first during an unwind; peers blocked on those resources are
                // released before the stop signal is raised.
                let _guard = PoisonOnPanic { phase, poisoned };
                let mut thread = backend.register_thread();
                let mut op = setup(i);
                let mut measuring = false;
                let mut hist = LatencyHist::new();
                loop {
                    match phase.load(Ordering::Acquire) {
                        PHASE_STOP => break,
                        PHASE_MEASURE if !measuring => {
                            thread.reset_stats();
                            hist = LatencyHist::new();
                            measuring = true;
                        }
                        _ => {}
                    }
                    if cfg.latency {
                        let t0 = Instant::now();
                        op(&mut thread);
                        hist.record(t0.elapsed());
                    } else {
                        op(&mut thread);
                    }
                }
                if !measuring {
                    // Starved through the whole measurement window (heavy
                    // over-subscription): its counters still hold warm-up
                    // work, which must not be attributed to the window.
                    thread.reset_stats();
                    hist = LatencyHist::new();
                }
                (thread.stats().clone(), hist, !measuring)
            }));
        }

        sleep_watching(cfg.warmup, &poisoned);
        phase.store(PHASE_MEASURE, Ordering::Release);
        let t0 = Instant::now();
        sleep_watching(cfg.duration, &poisoned);
        phase.store(PHASE_STOP, Ordering::Release);
        let elapsed = t0.elapsed();

        let mut payload = None;
        let mut latency = LatencyHist::new();
        for h in handles {
            match h.join() {
                Ok((stats, hist, starved)) => {
                    per_thread.push(stats);
                    latency.merge(&hist);
                    starved_threads += usize::from(starved);
                }
                Err(p) => payload = Some(p),
            }
        }
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
        RunReport {
            threads: cfg.threads,
            elapsed,
            total: stats::aggregate(per_thread.iter()),
            starved_threads,
            latency,
        }
    })
    .expect("harness scope failed")
}

/// Sets the poison + stop flags if its owning worker unwinds, so the run
/// aborts promptly instead of the surviving peers spinning until the end of
/// the measurement window.
struct PoisonOnPanic<'a> {
    phase: &'a AtomicU8,
    poisoned: &'a AtomicBool,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.poisoned.store(true, Ordering::Release);
            self.phase.store(PHASE_STOP, Ordering::Release);
        }
    }
}

/// Sleep for `total`, waking early if a worker poisoned the run.
fn sleep_watching(total: Duration, poisoned: &AtomicBool) {
    let deadline = Instant::now() + total;
    loop {
        if poisoned.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_htm::SiHtm;
    use tm_api::TxKind;

    #[test]
    fn harness_measures_steady_state() {
        let backend = SiHtm::with_defaults(1024);
        let report = run(&backend, &RunConfig::quick(2), |_i| {
            move |t: &mut si_htm::SiHtmThread| {
                t.exec(TxKind::Update, &mut |tx| {
                    let v = tx.read(0)?;
                    tx.write(0, v + 1)
                });
            }
        });
        assert_eq!(report.threads, 2);
        assert!(report.total.commits > 0, "no transactions committed");
        assert!(report.throughput() > 0.0);
        // One latency sample per completed op closure, and sane quantiles.
        assert!(report.latency.count() > 0, "no latency samples recorded");
        let (p50, _, p99, _) = report.latency.percentiles();
        assert!(p50 > 0 && p50 <= p99);
        // The counter must reflect warm-up + measured commits consistently.
        let counter = backend.memory().load(0);
        assert!(counter >= report.total.commits, "lost updates detected");
    }

    #[test]
    fn report_throughput_arithmetic() {
        let total = ThreadStats { commits: 500, ..ThreadStats::default() };
        let r = RunReport {
            threads: 1,
            elapsed: Duration::from_millis(250),
            total,
            starved_threads: 0,
            latency: LatencyHist::new(),
        };
        assert!((r.throughput() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn worker_panic_aborts_run_promptly() {
        let backend = SiHtm::with_defaults(1024);
        let cfg = RunConfig::new(2, Duration::from_millis(10), Duration::from_secs(30));
        let t0 = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(&backend, &cfg, |i| {
                let mut calls = 0u32;
                move |t: &mut si_htm::SiHtmThread| {
                    calls += 1;
                    if i == 0 && calls == 50 {
                        panic!("injected worker failure");
                    }
                    t.exec(TxKind::Update, &mut |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            })
        }));
        assert!(result.is_err(), "worker panic must propagate out of run()");
        // The 30 s measurement window must be cut short by the poison flag.
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "run did not abort promptly on worker panic"
        );
    }
}
