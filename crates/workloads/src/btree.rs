//! A transactional B+-tree over simulated memory — the index-structure
//! workload of the IMDB setting the paper targets ("IMDBs that store named
//! records accessed by a set-oriented language, making use of efficient
//! indexes", §3).
//!
//! Nodes are two cache lines (order 14): lookups touch `depth` nodes
//! (≈ 2·depth lines), inserts a handful more on splits, and **range scans
//! walk the leaf chain** — an unbounded read footprint that plain HTM
//! cannot track but SI-HTM's read paths handle for free.
//!
//! Deletion is leaf-local (no rebalancing): keys are removed from their
//! leaf, which may leave nodes underfull but preserves every search
//! invariant — the classic relaxed B-tree used by TM benchmarks, where
//! rebalancing would only add artificial conflicts.

use tm_api::{Abort, Tx};
use txmem::{Addr, LineAlloc, TxMemory, WORDS_PER_LINE};

/// Max keys per node. With this layout a node is exactly 2 cache lines.
pub const ORDER: usize = 14;

const LEAF_BIT: u64 = 1 << 63;
/// Word offsets within a node.
const H_HEADER: u64 = 0;
const H_KEYS: u64 = 1; // keys[0..ORDER] at words 1..=14
const H_VALS: u64 = 15; // leaf values[0..ORDER] at words 15..=28
const H_CHILDREN: u64 = 15; // internal children[0..=ORDER] at words 15..=29
const H_NEXT: u64 = 30; // leaf: next-leaf pointer
/// Words per node (2 cache lines).
pub const NODE_WORDS: u64 = 2 * WORDS_PER_LINE as u64;
const NIL: u64 = 0;

#[inline]
fn pack_header(leaf: bool, count: u64) -> u64 {
    count | if leaf { LEAF_BIT } else { 0 }
}

#[inline]
fn unpack_header(h: u64) -> (bool, u64) {
    (h & LEAF_BIT != 0, h & !LEAF_BIT)
}

/// Pre-allocated node addresses for one insert attempt. Splits consume
/// nodes from here; the same addresses are safely reused across retries of
/// the same transaction (aborted writes never reach memory).
pub struct NodeScratch {
    spares: Vec<Addr>,
    used: usize,
}

impl NodeScratch {
    /// Enough spares for a full root-to-leaf split cascade of any tree
    /// with fewer than ~10^9 keys, plus the new root.
    pub fn new(alloc: &LineAlloc) -> Self {
        Self::with_capacity(alloc, 12)
    }

    /// Scratch with room for `spares` splits — multi-key write transactions
    /// (several inserts per attempt) need more than one cascade's worth.
    pub fn with_capacity(alloc: &LineAlloc, spares: usize) -> Self {
        let spares = (0..spares).map(|_| alloc.alloc(NODE_WORDS)).collect();
        NodeScratch { spares, used: 0 }
    }

    /// Reset at the start of every attempt (addresses are reused).
    pub fn reset(&mut self) {
        self.used = 0;
    }

    fn take(&mut self) -> Addr {
        let a = self.spares[self.used];
        self.used += 1;
        a
    }

    /// Refill consumed spares from the arena (call after a commit).
    pub fn refill(&mut self, alloc: &LineAlloc) {
        for i in 0..self.used {
            self.spares[i] = alloc.alloc(NODE_WORDS);
        }
        self.used = 0;
    }
}

/// Result of a recursive insert.
enum Ins {
    /// Inserted (`true`) or updated in place (`false`).
    Done(bool),
    /// The child split: hoist `sep` with the new right sibling.
    Split { sep: u64, right: Addr, inserted: bool },
}

/// Handle to a B+-tree laid out in simulated memory. `Copy` so closures
/// capture it freely. The root pointer lives in its own cache line so
/// root splits are ordinary transactional writes.
#[derive(Debug, Clone, Copy)]
pub struct TxBTree {
    root_ptr: Addr,
}

impl TxBTree {
    /// Create an empty tree: a root-pointer line plus an empty leaf.
    pub fn create(memory: &TxMemory, alloc: &LineAlloc) -> TxBTree {
        let root_ptr = alloc.alloc_lines(1);
        let leaf = alloc.alloc(NODE_WORDS);
        memory.store(leaf + H_HEADER, pack_header(true, 0));
        memory.store(leaf + H_NEXT, NIL);
        memory.store(root_ptr, leaf);
        TxBTree { root_ptr }
    }

    /// Populate with `keys` (value = key) using raw stores (build phase).
    pub fn build(memory: &TxMemory, alloc: &LineAlloc, keys: impl Iterator<Item = u64>) -> TxBTree {
        Self::build_pairs(memory, alloc, keys.map(|k| (k, k)))
    }

    /// Populate with explicit `(key, value)` pairs using raw stores.
    pub fn build_pairs(
        memory: &TxMemory,
        alloc: &LineAlloc,
        entries: impl Iterator<Item = (u64, u64)>,
    ) -> TxBTree {
        let tree = TxBTree::create(memory, alloc);
        let mut raw = RawTx { memory };
        let mut scratch = NodeScratch::new(alloc);
        for (k, v) in entries {
            scratch.reset();
            tree.insert(&mut raw, k, v, &mut scratch).expect("raw tx cannot abort");
            scratch.refill(alloc);
        }
        tree
    }

    /// Non-transactional point lookup straight off memory (population
    /// checks and end-of-run audits; not for use during runs).
    pub fn lookup_raw(&self, memory: &TxMemory, key: u64) -> Option<u64> {
        let mut raw = RawTx { memory };
        self.lookup(&mut raw, key).expect("raw tx cannot abort")
    }

    /// Point lookup.
    pub fn lookup(&self, tx: &mut dyn Tx, key: u64) -> Result<Option<u64>, Abort> {
        let mut node = tx.read(self.root_ptr)?;
        loop {
            let (leaf, count) = unpack_header(tx.read(node + H_HEADER)?);
            if leaf {
                for i in 0..count {
                    if tx.read(node + H_KEYS + i)? == key {
                        return Ok(Some(tx.read(node + H_VALS + i)?));
                    }
                }
                return Ok(None);
            }
            let idx = self.child_index(tx, node, count, key)?;
            node = tx.read(node + H_CHILDREN + idx)?;
        }
    }

    /// Number of separator keys ≤ `key` (the child slot to descend into).
    fn child_index(&self, tx: &mut dyn Tx, node: Addr, count: u64, key: u64) -> Result<u64, Abort> {
        let mut i = 0;
        while i < count && tx.read(node + H_KEYS + i)? <= key {
            i += 1;
        }
        Ok(i)
    }

    /// Insert or update. Returns `true` when a new key was inserted.
    pub fn insert(
        &self,
        tx: &mut dyn Tx,
        key: u64,
        value: u64,
        scratch: &mut NodeScratch,
    ) -> Result<bool, Abort> {
        let root = tx.read(self.root_ptr)?;
        match self.insert_rec(tx, root, key, value, scratch)? {
            Ins::Done(inserted) => Ok(inserted),
            Ins::Split { sep, right, inserted } => {
                // Root split: grow the tree by one level.
                let new_root = scratch.take();
                tx.write(new_root + H_HEADER, pack_header(false, 1))?;
                tx.write(new_root + H_KEYS, sep)?;
                tx.write(new_root + H_CHILDREN, root)?;
                tx.write(new_root + H_CHILDREN + 1, right)?;
                tx.write(self.root_ptr, new_root)?;
                Ok(inserted)
            }
        }
    }

    fn insert_rec(
        &self,
        tx: &mut dyn Tx,
        node: Addr,
        key: u64,
        value: u64,
        scratch: &mut NodeScratch,
    ) -> Result<Ins, Abort> {
        let (leaf, count) = unpack_header(tx.read(node + H_HEADER)?);
        if leaf {
            return self.insert_leaf(tx, node, count, key, value, scratch);
        }
        let idx = self.child_index(tx, node, count, key)?;
        let child = tx.read(node + H_CHILDREN + idx)?;
        match self.insert_rec(tx, child, key, value, scratch)? {
            Ins::Done(inserted) => Ok(Ins::Done(inserted)),
            Ins::Split { sep, right, inserted } => {
                if count < ORDER as u64 {
                    // Shift keys/children right of idx and splice in.
                    let mut i = count;
                    while i > idx {
                        let k = tx.read(node + H_KEYS + i - 1)?;
                        tx.write(node + H_KEYS + i, k)?;
                        let c = tx.read(node + H_CHILDREN + i)?;
                        tx.write(node + H_CHILDREN + i + 1, c)?;
                        i -= 1;
                    }
                    tx.write(node + H_KEYS + idx, sep)?;
                    tx.write(node + H_CHILDREN + idx + 1, right)?;
                    tx.write(node + H_HEADER, pack_header(false, count + 1))?;
                    return Ok(Ins::Done(inserted));
                }
                // Split this internal node: temporarily materialise the
                // ORDER+1 keys / ORDER+2 children, then redistribute.
                let mut keys = Vec::with_capacity(ORDER + 1);
                let mut children = Vec::with_capacity(ORDER + 2);
                for i in 0..count {
                    keys.push(tx.read(node + H_KEYS + i)?);
                }
                for i in 0..=count {
                    children.push(tx.read(node + H_CHILDREN + i)?);
                }
                keys.insert(idx as usize, sep);
                children.insert(idx as usize + 1, right);
                let mid = keys.len() / 2;
                let up = keys[mid];
                let right_node = scratch.take();
                // Left keeps keys[..mid], children[..=mid].
                for (i, k) in keys[..mid].iter().enumerate() {
                    tx.write(node + H_KEYS + i as u64, *k)?;
                }
                for (i, c) in children[..=mid].iter().enumerate() {
                    tx.write(node + H_CHILDREN + i as u64, *c)?;
                }
                tx.write(node + H_HEADER, pack_header(false, mid as u64))?;
                // Right takes keys[mid+1..], children[mid+1..].
                let rkeys = &keys[mid + 1..];
                let rchildren = &children[mid + 1..];
                for (i, k) in rkeys.iter().enumerate() {
                    tx.write(right_node + H_KEYS + i as u64, *k)?;
                }
                for (i, c) in rchildren.iter().enumerate() {
                    tx.write(right_node + H_CHILDREN + i as u64, *c)?;
                }
                tx.write(right_node + H_HEADER, pack_header(false, rkeys.len() as u64))?;
                Ok(Ins::Split { sep: up, right: right_node, inserted })
            }
        }
    }

    fn insert_leaf(
        &self,
        tx: &mut dyn Tx,
        node: Addr,
        count: u64,
        key: u64,
        value: u64,
        scratch: &mut NodeScratch,
    ) -> Result<Ins, Abort> {
        // Position of the first key ≥ `key`.
        let mut pos = 0;
        while pos < count {
            let k = tx.read(node + H_KEYS + pos)?;
            if k == key {
                tx.write(node + H_VALS + pos, value)?;
                return Ok(Ins::Done(false));
            }
            if k > key {
                break;
            }
            pos += 1;
        }
        if count < ORDER as u64 {
            let mut i = count;
            while i > pos {
                let k = tx.read(node + H_KEYS + i - 1)?;
                tx.write(node + H_KEYS + i, k)?;
                let v = tx.read(node + H_VALS + i - 1)?;
                tx.write(node + H_VALS + i, v)?;
                i -= 1;
            }
            tx.write(node + H_KEYS + pos, key)?;
            tx.write(node + H_VALS + pos, value)?;
            tx.write(node + H_HEADER, pack_header(true, count + 1))?;
            return Ok(Ins::Done(true));
        }
        // Leaf split.
        let mut keys = Vec::with_capacity(ORDER + 1);
        let mut vals = Vec::with_capacity(ORDER + 1);
        for i in 0..count {
            keys.push(tx.read(node + H_KEYS + i)?);
            vals.push(tx.read(node + H_VALS + i)?);
        }
        keys.insert(pos as usize, key);
        vals.insert(pos as usize, value);
        let mid = keys.len() / 2;
        let right = scratch.take();
        for (i, (k, v)) in keys[mid..].iter().zip(&vals[mid..]).enumerate() {
            tx.write(right + H_KEYS + i as u64, *k)?;
            tx.write(right + H_VALS + i as u64, *v)?;
        }
        tx.write(right + H_HEADER, pack_header(true, (keys.len() - mid) as u64))?;
        let old_next = tx.read(node + H_NEXT)?;
        tx.write(right + H_NEXT, old_next)?;
        tx.write(node + H_NEXT, right)?;
        tx.write(node + H_HEADER, pack_header(true, mid as u64))?;
        // Write the left half back: when the new key landed in it, the
        // stored prefix shifted.
        for (i, (k, v)) in keys[..mid].iter().zip(&vals[..mid]).enumerate() {
            tx.write(node + H_KEYS + i as u64, *k)?;
            tx.write(node + H_VALS + i as u64, *v)?;
        }
        Ok(Ins::Split { sep: keys[mid], right, inserted: true })
    }

    /// Remove a key (leaf-local, no rebalancing). Returns whether it existed.
    pub fn remove(&self, tx: &mut dyn Tx, key: u64) -> Result<bool, Abort> {
        let mut node = tx.read(self.root_ptr)?;
        loop {
            let (leaf, count) = unpack_header(tx.read(node + H_HEADER)?);
            if !leaf {
                let idx = self.child_index(tx, node, count, key)?;
                node = tx.read(node + H_CHILDREN + idx)?;
                continue;
            }
            for i in 0..count {
                if tx.read(node + H_KEYS + i)? == key {
                    for j in i..count - 1 {
                        let k = tx.read(node + H_KEYS + j + 1)?;
                        tx.write(node + H_KEYS + j, k)?;
                        let v = tx.read(node + H_VALS + j + 1)?;
                        tx.write(node + H_VALS + j, v)?;
                    }
                    tx.write(node + H_HEADER, pack_header(true, count - 1))?;
                    return Ok(true);
                }
            }
            return Ok(false);
        }
    }

    /// Range scan: `(matches, sum-of-values)` over up to `limit` entries
    /// with key ≥ `from`, walking the leaf chain. Unbounded read footprint.
    pub fn range(&self, tx: &mut dyn Tx, from: u64, limit: u64) -> Result<(u64, u64), Abort> {
        // Descend to the leaf that would contain `from`.
        let mut node = tx.read(self.root_ptr)?;
        loop {
            let (leaf, count) = unpack_header(tx.read(node + H_HEADER)?);
            if leaf {
                break;
            }
            let idx = self.child_index(tx, node, count, from)?;
            node = tx.read(node + H_CHILDREN + idx)?;
        }
        let mut n = 0;
        let mut sum = 0u64;
        while node != NIL && n < limit {
            let (_, count) = unpack_header(tx.read(node + H_HEADER)?);
            for i in 0..count {
                if n >= limit {
                    break;
                }
                let k = tx.read(node + H_KEYS + i)?;
                if k >= from {
                    sum = sum.wrapping_add(tx.read(node + H_VALS + i)?);
                    n += 1;
                }
            }
            node = tx.read(node + H_NEXT)?;
        }
        Ok((n, sum))
    }

    /// Half-open range scan: `(matches, sum-of-values)` over up to `limit`
    /// entries with `from ≤ key < to`, walking the leaf chain. The `to`
    /// bound is what turns the open-ended [`range`](Self::range) into a
    /// *prefix* scan (`[p·2ᵏ, (p+1)·2ᵏ)`).
    pub fn range_between(
        &self,
        tx: &mut dyn Tx,
        from: u64,
        to: u64,
        limit: u64,
    ) -> Result<(u64, u64), Abort> {
        let mut node = tx.read(self.root_ptr)?;
        loop {
            let (leaf, count) = unpack_header(tx.read(node + H_HEADER)?);
            if leaf {
                break;
            }
            let idx = self.child_index(tx, node, count, from)?;
            node = tx.read(node + H_CHILDREN + idx)?;
        }
        let mut n = 0;
        let mut sum = 0u64;
        'chain: while node != NIL && n < limit {
            let (_, count) = unpack_header(tx.read(node + H_HEADER)?);
            for i in 0..count {
                if n >= limit {
                    break 'chain;
                }
                let k = tx.read(node + H_KEYS + i)?;
                if k >= to {
                    break 'chain;
                }
                if k >= from {
                    sum = sum.wrapping_add(tx.read(node + H_VALS + i)?);
                    n += 1;
                }
            }
            node = tx.read(node + H_NEXT)?;
        }
        Ok((n, sum))
    }

    /// Entry-yielding half-open range scan: calls `f(key, value)` for up
    /// to `limit` entries with `from ≤ key < to` in key order and returns
    /// how many were yielded. Same leaf-chain walk as
    /// [`range_between`](Self::range_between), but surfacing the entries
    /// themselves — what ordered merges (cross-shard scans) and secondary
    /// index lookups need, where a count/sum digest is not enough.
    pub fn range_entries(
        &self,
        tx: &mut dyn Tx,
        from: u64,
        to: u64,
        limit: u64,
        f: &mut dyn FnMut(u64, u64),
    ) -> Result<u64, Abort> {
        let mut node = tx.read(self.root_ptr)?;
        loop {
            let (leaf, count) = unpack_header(tx.read(node + H_HEADER)?);
            if leaf {
                break;
            }
            let idx = self.child_index(tx, node, count, from)?;
            node = tx.read(node + H_CHILDREN + idx)?;
        }
        let mut n = 0;
        'chain: while node != NIL && n < limit {
            let (_, count) = unpack_header(tx.read(node + H_HEADER)?);
            for i in 0..count {
                if n >= limit {
                    break 'chain;
                }
                let k = tx.read(node + H_KEYS + i)?;
                if k >= to {
                    break 'chain;
                }
                if k >= from {
                    f(k, tx.read(node + H_VALS + i)?);
                    n += 1;
                }
            }
            node = tx.read(node + H_NEXT)?;
        }
        Ok(n)
    }

    /// Transactional whole-tree walk in key order: `f(key, value)` per
    /// entry, along the leaf chain. The read footprint is the entire
    /// tree — on SI-HTM this runs on the unbounded, never-aborting
    /// read-only fast path, which is what makes consistent full-store
    /// snapshots (checkpointing) affordable during a run.
    pub fn for_each(&self, tx: &mut dyn Tx, f: &mut dyn FnMut(u64, u64)) -> Result<(), Abort> {
        let mut node = tx.read(self.root_ptr)?;
        loop {
            let (leaf, _) = unpack_header(tx.read(node + H_HEADER)?);
            if leaf {
                break;
            }
            node = tx.read(node + H_CHILDREN)?;
        }
        while node != NIL {
            let (_, count) = unpack_header(tx.read(node + H_HEADER)?);
            for i in 0..count {
                let k = tx.read(node + H_KEYS + i)?;
                let v = tx.read(node + H_VALS + i)?;
                f(k, v);
            }
            node = tx.read(node + H_NEXT)?;
        }
        Ok(())
    }

    /// Non-transactional whole-tree audit: returns all keys in order and
    /// checks every B+-tree invariant (sortedness, separator bounds, leaf
    /// chain coverage). Panics on violations. Not for use during runs.
    pub fn audit(&self, memory: &TxMemory) -> Vec<u64> {
        let root = memory.load(self.root_ptr);
        let mut keys = Vec::new();
        self.audit_rec(memory, root, u64::MIN, u64::MAX, &mut keys);
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "keys out of order: {} !< {}", w[0], w[1]);
        }
        // The leaf chain must enumerate the same keys.
        let mut chain = Vec::new();
        let mut node = root;
        loop {
            let (leaf, count) = unpack_header(memory.load(node + H_HEADER));
            if leaf {
                break;
            }
            let _ = count;
            node = memory.load(node + H_CHILDREN);
        }
        while node != NIL {
            let (_, count) = unpack_header(memory.load(node + H_HEADER));
            for i in 0..count {
                chain.push(memory.load(node + H_KEYS + i));
            }
            node = memory.load(node + H_NEXT);
        }
        assert_eq!(keys, chain, "leaf chain disagrees with tree order");
        keys
    }

    /// Debug rendering of the tree structure (tests/troubleshooting).
    pub fn dump(&self, memory: &TxMemory) -> String {
        let mut out = String::new();
        self.dump_rec(memory, memory.load(self.root_ptr), 0, &mut out);
        out
    }

    fn dump_rec(&self, memory: &TxMemory, node: Addr, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let (leaf, count) = unpack_header(memory.load(node + H_HEADER));
        let keys: Vec<u64> = (0..count).map(|i| memory.load(node + H_KEYS + i)).collect();
        let _ = writeln!(
            out,
            "{}{} @{node} keys {:?}",
            "  ".repeat(depth),
            if leaf { "leaf" } else { "node" },
            keys
        );
        if !leaf {
            for i in 0..=count {
                self.dump_rec(memory, memory.load(node + H_CHILDREN + i), depth + 1, out);
            }
        }
    }

    fn audit_rec(&self, memory: &TxMemory, node: Addr, lo: u64, hi: u64, out: &mut Vec<u64>) {
        let (leaf, count) = unpack_header(memory.load(node + H_HEADER));
        assert!(count <= ORDER as u64, "node overfull");
        if leaf {
            for i in 0..count {
                let k = memory.load(node + H_KEYS + i);
                assert!(k >= lo && k < hi, "leaf key {k} outside ({lo}, {hi})");
                out.push(k);
            }
            return;
        }
        assert!(count >= 1, "internal node without separators");
        let mut lower = lo;
        for i in 0..count {
            let sep = memory.load(node + H_KEYS + i);
            assert!(sep >= lo && sep <= hi, "separator {sep} outside ({lo}, {hi})");
            let child = memory.load(node + H_CHILDREN + i);
            self.audit_rec(memory, child, lower, sep, out);
            lower = sep;
        }
        let last = memory.load(node + H_CHILDREN + count);
        self.audit_rec(memory, last, lower, hi, out);
    }
}

/// Per-thread B+-tree benchmark client: `ro_fraction` of operations are
/// lookups, `scan_fraction` are leaf-chain range scans, the rest alternate
/// insert/remove on fresh keys (keeping the population stationary).
pub struct BTreeWorker {
    tree: TxBTree,
    alloc: std::sync::Arc<LineAlloc>,
    scratch: NodeScratch,
    rng_state: u64,
    ro_fraction: f64,
    scan_fraction: f64,
    scan_limit: u64,
    key_space: u64,
    next_key: u64,
    stride: u64,
    pending_remove: Option<u64>,
}

impl BTreeWorker {
    pub fn new(
        tree: TxBTree,
        alloc: std::sync::Arc<LineAlloc>,
        key_space: u64,
        ro_fraction: f64,
        scan_fraction: f64,
        thread_index: usize,
        total_threads: usize,
    ) -> Self {
        let scratch = NodeScratch::new(&alloc);
        BTreeWorker {
            tree,
            alloc,
            scratch,
            rng_state: 0xB7EE ^ (thread_index as u64) << 17,
            ro_fraction,
            scan_fraction,
            scan_limit: 500,
            key_space,
            next_key: key_space + 1 + thread_index as u64,
            stride: total_threads as u64,
            pending_remove: None,
        }
    }

    /// Override the range-scan length (default 500 entries).
    pub fn with_scan_limit(mut self, limit: u64) -> Self {
        self.scan_limit = limit;
        self
    }

    fn next_rand(&mut self) -> u64 {
        self.rng_state =
            self.rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.rng_state >> 11
    }

    /// Execute one benchmark transaction.
    pub fn run_op<T: tm_api::TmThread>(&mut self, thread: &mut T) {
        use tm_api::TxKind;
        let roll = self.next_rand() as f64 / (u64::MAX >> 11) as f64;
        let tree = self.tree;
        if roll < self.scan_fraction {
            let from = self.next_rand() % self.key_space + 1;
            let limit = self.scan_limit;
            thread.exec(TxKind::ReadOnly, &mut |tx| {
                tree.range(tx, from, limit)?;
                Ok(())
            });
        } else if roll < self.scan_fraction + self.ro_fraction {
            let key = self.next_rand() % self.key_space + 1;
            thread.exec(TxKind::ReadOnly, &mut |tx| {
                tree.lookup(tx, key)?;
                Ok(())
            });
        } else if let Some(key) = self.pending_remove.take() {
            thread.exec(TxKind::Update, &mut |tx| {
                tree.remove(tx, key)?;
                Ok(())
            });
        } else {
            let key = self.next_key;
            self.next_key += self.stride;
            let scratch = &mut self.scratch;
            let out = thread.exec(TxKind::Update, &mut |tx| {
                scratch.reset();
                tree.insert(tx, key, key, scratch)?;
                Ok(())
            });
            if out == tm_api::Outcome::Committed {
                self.scratch.refill(&self.alloc);
                self.pending_remove = Some(key);
            }
        }
    }
}

/// Raw (non-transactional) `Tx` over memory — used by the bulk builder.
struct RawTx<'a> {
    memory: &'a TxMemory,
}

impl Tx for RawTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<u64, Abort> {
        Ok(self.memory.load(addr))
    }

    fn write(&mut self, addr: Addr, val: u64) -> Result<(), Abort> {
        self.memory.store(addr, val);
        Ok(())
    }
}

/// Memory sizing helper: words for a tree of `n` keys with headroom.
pub fn memory_words(n: u64) -> usize {
    // Worst-case ~2 nodes per ORDER/2 keys, plus scratch headroom.
    let nodes = n / (ORDER as u64 / 2) + 64;
    ((nodes + 16) * NODE_WORDS + WORDS_PER_LINE as u64) as usize * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_htm::SiHtm;
    use tm_api::{TmBackend, TmThread, TxKind};

    fn setup(n: u64) -> (SiHtm, TxBTree, std::sync::Arc<LineAlloc>) {
        let words = memory_words(n.max(64));
        let backend = SiHtm::with_defaults(words);
        let alloc = std::sync::Arc::new(LineAlloc::new(0, words as u64));
        let tree = TxBTree::build(backend.memory(), &alloc, 0..0);
        let _ = n;
        (backend, tree, alloc)
    }

    #[test]
    fn empty_tree_lookup_and_audit() {
        let (backend, tree, _a) = setup(0);
        let mut t = backend.register_thread();
        let mut found = Some(0);
        t.exec(TxKind::ReadOnly, &mut |tx| {
            found = tree.lookup(tx, 42)?;
            Ok(())
        });
        assert_eq!(found, None);
        assert!(tree.audit(backend.memory()).is_empty());
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let (backend, tree, alloc) = setup(2000);
        let mut t = backend.register_thread();
        let mut scratch = NodeScratch::new(&alloc);
        for k in 1..=500u64 {
            let mut inserted = false;
            t.exec(TxKind::Update, &mut |tx| {
                scratch.reset();
                inserted = tree.insert(tx, k, k * 10, &mut scratch)?;
                Ok(())
            });
            assert!(inserted, "key {k} should be new");
            scratch.refill(&alloc);
        }
        let keys = tree.audit(backend.memory());
        assert_eq!(keys, (1..=500).collect::<Vec<_>>());
        let mut v = None;
        t.exec(TxKind::ReadOnly, &mut |tx| {
            v = tree.lookup(tx, 250)?;
            Ok(())
        });
        assert_eq!(v, Some(2500));
    }

    #[test]
    fn random_order_inserts_and_updates() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let (backend, tree, alloc) = setup(2000);
        let mut t = backend.register_thread();
        let mut scratch = NodeScratch::new(&alloc);
        let mut keys: Vec<u64> = (1..=400).collect();
        keys.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(5));
        for &k in &keys {
            t.exec(TxKind::Update, &mut |tx| {
                scratch.reset();
                tree.insert(tx, k, k, &mut scratch)?;
                Ok(())
            });
            scratch.refill(&alloc);
        }
        // Update half of them in place.
        for k in 1..=200u64 {
            let mut inserted = true;
            t.exec(TxKind::Update, &mut |tx| {
                scratch.reset();
                inserted = tree.insert(tx, k, k + 7, &mut scratch)?;
                Ok(())
            });
            assert!(!inserted, "key {k} already existed");
            scratch.refill(&alloc);
        }
        assert_eq!(tree.audit(backend.memory()).len(), 400);
        let mut v = None;
        t.exec(TxKind::ReadOnly, &mut |tx| {
            v = tree.lookup(tx, 100)?;
            Ok(())
        });
        assert_eq!(v, Some(107));
    }

    #[test]
    fn remove_and_reinsert() {
        let (backend, tree, alloc) = setup(1000);
        let mut t = backend.register_thread();
        let mut scratch = NodeScratch::new(&alloc);
        for k in 1..=200u64 {
            t.exec(TxKind::Update, &mut |tx| {
                scratch.reset();
                tree.insert(tx, k, k, &mut scratch)?;
                Ok(())
            });
            scratch.refill(&alloc);
        }
        // Remove the odd keys.
        for k in (1..=200u64).step_by(2) {
            let mut removed = false;
            t.exec(TxKind::Update, &mut |tx| {
                removed = tree.remove(tx, k)?;
                Ok(())
            });
            assert!(removed);
        }
        let keys = tree.audit(backend.memory());
        assert_eq!(keys, (2..=200).step_by(2).collect::<Vec<_>>());
        // Removing again finds nothing.
        let mut removed = true;
        t.exec(TxKind::Update, &mut |tx| {
            removed = tree.remove(tx, 1)?;
            Ok(())
        });
        assert!(!removed);
        // Reinsert works.
        t.exec(TxKind::Update, &mut |tx| {
            scratch.reset();
            tree.insert(tx, 1, 11, &mut scratch)?;
            Ok(())
        });
        scratch.refill(&alloc);
        let mut v = None;
        t.exec(TxKind::ReadOnly, &mut |tx| {
            v = tree.lookup(tx, 1)?;
            Ok(())
        });
        assert_eq!(v, Some(11));
    }

    #[test]
    fn range_scans_walk_the_leaf_chain() {
        let (backend, tree, alloc) = setup(2000);
        let tree2 = TxBTree::build(backend.memory(), &alloc, 1..=300);
        let mut t = backend.register_thread();
        let _ = tree;
        let mut res = (0, 0);
        t.exec(TxKind::ReadOnly, &mut |tx| {
            res = tree2.range(tx, 100, 50)?;
            Ok(())
        });
        assert_eq!(res.0, 50);
        assert_eq!(res.1, (100..150u64).sum::<u64>());
        // Open-ended tail scan.
        t.exec(TxKind::ReadOnly, &mut |tx| {
            res = tree2.range(tx, 290, 1000)?;
            Ok(())
        });
        assert_eq!(res.0, 11);
    }

    #[test]
    fn bounded_range_stops_at_the_upper_key() {
        let (backend, _tree, alloc) = setup(2000);
        let tree = TxBTree::build_pairs(backend.memory(), &alloc, (1..=300).map(|k| (k, k * 2)));
        let mut t = backend.register_thread();
        let mut res = (0, 0);
        t.exec(TxKind::ReadOnly, &mut |tx| {
            res = tree.range_between(tx, 100, 120, 1000)?;
            Ok(())
        });
        assert_eq!(res.0, 20);
        assert_eq!(res.1, (100..120u64).map(|k| k * 2).sum::<u64>());
        // Limit still applies inside the bounds.
        t.exec(TxKind::ReadOnly, &mut |tx| {
            res = tree.range_between(tx, 100, 120, 5)?;
            Ok(())
        });
        assert_eq!(res.0, 5);
        // Raw lookup agrees with the builder's pairs.
        assert_eq!(tree.lookup_raw(backend.memory(), 7), Some(14));
        assert_eq!(tree.lookup_raw(backend.memory(), 1000), None);
    }

    #[test]
    fn bulk_builder_matches_transactional_inserts() {
        let words = memory_words(1024);
        let backend = SiHtm::with_defaults(words);
        let alloc = LineAlloc::new(0, words as u64);
        let tree = TxBTree::build(backend.memory(), &alloc, 1..=321);
        assert_eq!(tree.audit(backend.memory()), (1..=321).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_inserts_preserve_invariants() {
        let words = memory_words(8192);
        let backend = SiHtm::with_defaults(words);
        let alloc = std::sync::Arc::new(LineAlloc::new(0, words as u64));
        let tree = TxBTree::build(backend.memory(), &alloc, 0..0);
        let threads = 4u64;
        let per = 150u64;
        crossbeam_utils::thread::scope(|s| {
            for part in 0..threads {
                let backend = backend.clone();
                let alloc = std::sync::Arc::clone(&alloc);
                s.spawn(move |_| {
                    let mut t = backend.register_thread();
                    let mut scratch = NodeScratch::new(&alloc);
                    for i in 0..per {
                        let k = part + i * threads + 1; // disjoint strided keys
                        t.exec(TxKind::Update, &mut |tx| {
                            scratch.reset();
                            tree.insert(tx, k, k, &mut scratch)?;
                            Ok(())
                        });
                        scratch.refill(&alloc);
                    }
                });
            }
        })
        .unwrap();
        let keys = tree.audit(backend.memory());
        assert_eq!(keys, (1..=threads * per).collect::<Vec<_>>());
    }
}
