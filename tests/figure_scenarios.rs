//! Figures 1–5 of the paper as executable scenarios.
//!
//! The paper's first five figures illustrate the semantics SI-HTM is built
//! on: SI histories (Fig. 1), ROT conflict behaviour (Fig. 2), the
//! single-version anomaly raw ROTs exhibit (Fig. 3), how the safety wait
//! repairs it (Fig. 4), and the commit-timestamp rationale (Fig. 5). Each
//! test reproduces the figure's schedule (or, where exact interleavings
//! cannot be forced, the property the figure argues for).

use htm_sim::{AbortReason, Htm, HtmConfig, NonTxClass, TxMode};
use si_htm::{SiHtm, SiHtmConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tm_api::{Outcome, TmBackend, TmThread, TxKind};

const X: u64 = 0;
const Y: u64 = 16;

fn spin_until(flag: &AtomicBool) {
    while !flag.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
}

/// Fig. 1 — SI semantics: a transaction concurrent with a writer reads
/// from its own snapshot (the pre-write value); write-write conflicts
/// abort; read-write conflicts do not.
#[test]
fn fig1_si_semantics() {
    let b = SiHtm::new(HtmConfig::small(), 256, SiHtmConfig::default());
    b.memory().store(X, 0);
    b.memory().store(Y, 10);

    let t0_wrote = AtomicBool::new(false);
    let t1_read = AtomicBool::new(false);
    let t1_value = AtomicU64::new(u64::MAX);

    crossbeam_utils::thread::scope(|s| {
        // t0: r(X)=0, w(X,1); its safety wait forces it to linger until t1
        // (active in its snapshot) completes.
        let b0 = b.clone();
        let t0_wrote_r = &t0_wrote;
        let t1_read_r = &t1_read;
        s.spawn(move |_| {
            let mut t = b0.register_thread();
            let out = t.exec(TxKind::Update, &mut |tx| {
                assert_eq!(tx.read(X)?, 0);
                tx.write(X, 1)?;
                t0_wrote_r.store(true, Ordering::Release);
                // Keep the transaction active until t1 performed its read,
                // so the two are genuinely concurrent.
                spin_until(t1_read_r);
                Ok(())
            });
            assert_eq!(out, Outcome::Committed);
        });

        // t1: r(X) concurrent with t0's write — must observe the snapshot
        // value 0, not t0's uncommitted 1.
        let b1 = b.clone();
        let t0_wrote_r = &t0_wrote;
        let t1_read_r = &t1_read;
        let t1_value_r = &t1_value;
        s.spawn(move |_| {
            let mut t = b1.register_thread();
            t.exec(TxKind::ReadOnly, &mut |tx| {
                spin_until(t0_wrote_r);
                let v = tx.read(X)?;
                t1_value_r.store(v, Ordering::Release);
                t1_read_r.store(true, Ordering::Release);
                Ok(())
            });
        });
    })
    .unwrap();

    assert_eq!(t1_value.load(Ordering::Acquire), 0, "t1 must read from its snapshot");
    assert_eq!(b.memory().load(X), 1, "t0's write committed afterwards");

    // t3-style write-write conflict: two concurrent writers of X — the
    // hardware aborts (at least) one; both eventually commit via retries,
    // so no update is lost.
    let b2 = b.clone();
    crossbeam_utils::thread::scope(|s| {
        for _ in 0..2 {
            let b = b2.clone();
            s.spawn(move |_| {
                let mut t = b.register_thread();
                for _ in 0..100 {
                    tm_api::increment(&mut t, X);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(b.memory().load(X), 201);
}

/// Fig. 2A — a write to a location previously read by a concurrent ROT is
/// tolerated (ROT reads are untracked).
#[test]
fn fig2a_write_after_read_tolerated_between_rots() {
    let htm = Htm::new(HtmConfig::small(), 256);
    let mut r0 = htm.register_thread();
    let mut r1 = htm.register_thread();
    r0.begin(TxMode::Rot);
    assert_eq!(r0.read(X).unwrap(), 0);
    r1.begin(TxMode::Rot);
    r1.write(X, 1).unwrap();
    r1.commit().expect("write-after-read is not a ROT conflict");
    r0.commit().expect("the reader survives too");
}

/// Fig. 2B — a read of a location written by a concurrent ROT invalidates
/// the writer's TMCAM entry: the writer aborts, the reader gets the old
/// value.
#[test]
fn fig2b_read_after_write_kills_writer() {
    let htm = Htm::new(HtmConfig::small(), 256);
    htm.memory().store(X, 7);
    let mut r0 = htm.register_thread();
    let mut r1 = htm.register_thread();
    r1.begin(TxMode::Rot);
    r1.write(X, 8).unwrap();
    r0.begin(TxMode::Rot);
    assert_eq!(r0.read(X).unwrap(), 7, "reader sees the pre-write value");
    assert_eq!(r1.commit(), Err(AbortReason::Conflict), "writer was invalidated");
    r0.commit().unwrap();
    assert_eq!(htm.memory().load(X), 7);
}

/// Fig. 3 — *raw* ROTs (no safety wait) break snapshots: a reader observes
/// both the pre- and post-commit values of a concurrent writer. This is
/// the anomaly SI forbids and SI-HTM's quiescence exists to prevent.
#[test]
fn fig3_raw_rots_exhibit_the_snapshot_anomaly() {
    let htm = Htm::new(HtmConfig::small(), 256);
    let mut writer = htm.register_thread();
    let mut reader = htm.register_thread();

    reader.begin(TxMode::Rot);
    assert_eq!(reader.read(X).unwrap(), 0, "first read: snapshot value");

    // The writer commits *immediately* — no quiescence.
    writer.begin(TxMode::Rot);
    writer.write(X, 1).unwrap();
    writer.commit().unwrap();

    // The reader's second read sees the new value: its "snapshot" broke.
    assert_eq!(reader.read(X).unwrap(), 1, "single-version memory leaks the new value");
    reader.commit().unwrap();
}

/// Fig. 4A — with SI-HTM's safety wait, the same schedule is repaired by
/// aborting the writer: a concurrent reader's late read invalidates the
/// waiting writer and observes the original value.
#[test]
fn fig4a_safety_wait_reader_kills_waiting_writer() {
    let b = SiHtm::new(HtmConfig::small(), 256, SiHtmConfig::default());
    let reader_first_read = AtomicBool::new(false);
    let writer_done = AtomicBool::new(false);
    let reads = std::sync::Mutex::new((u64::MAX, u64::MAX));

    crossbeam_utils::thread::scope(|s| {
        let b0 = b.clone();
        let rfr = &reader_first_read;
        s.spawn(move |_| {
            let mut t = b0.register_thread();
            // The writer may retry after being killed; on retry the reader
            // is gone and it commits cleanly.
            let out = t.exec(TxKind::Update, &mut |tx| {
                spin_until(rfr); // ensure the reader's tx is active first
                tx.write(X, 1)?;
                Ok(())
            });
            assert_eq!(out, Outcome::Committed);
            writer_done.store(true, Ordering::Release);
        });

        let b1 = b.clone();
        let rfr = &reader_first_read;
        let reads_r = &reads;
        s.spawn(move |_| {
            let mut t = b1.register_thread();
            t.exec(TxKind::ReadOnly, &mut |tx| {
                let first = tx.read(X)?;
                rfr.store(true, Ordering::Release);
                // Give the writer time to write and enter its safety wait
                // (it cannot commit while we are active).
                std::thread::sleep(std::time::Duration::from_millis(20));
                let second = tx.read(X)?;
                *reads_r.lock().unwrap() = (first, second);
                Ok(())
            });
        });
    })
    .unwrap();

    let (first, second) = *reads.lock().unwrap();
    assert_eq!(
        (first, second),
        (0, 0),
        "the reader's snapshot must stay intact (writer aborted or waited)"
    );
    assert_eq!(b.memory().load(X), 1, "the writer eventually committed");
}

/// Fig. 4B — a writer whose lines nobody reads simply pays the wait and
/// commits after the concurrent transactions complete.
#[test]
fn fig4b_safety_wait_then_commit() {
    let b = SiHtm::new(HtmConfig::small(), 256, SiHtmConfig::default());
    let reader_active = AtomicBool::new(false);

    crossbeam_utils::thread::scope(|s| {
        let b0 = b.clone();
        let ra = &reader_active;
        s.spawn(move |_| {
            let mut t = b0.register_thread();
            let out = t.exec(TxKind::Update, &mut |tx| {
                spin_until(ra);
                tx.write(Y, 3)?; // the reader only touches X
                Ok(())
            });
            assert_eq!(out, Outcome::Committed);
            assert_eq!(t.stats().aborts(), 0, "no conflict: the wait suffices");
            assert_eq!(t.stats().quiesce_waits, 1, "but it did have to wait");
        });

        let b1 = b.clone();
        let ra = &reader_active;
        s.spawn(move |_| {
            let mut t = b1.register_thread();
            t.exec(TxKind::ReadOnly, &mut |tx| {
                ra.store(true, Ordering::Release);
                let _ = tx.read(X)?;
                std::thread::sleep(std::time::Duration::from_millis(20));
                let _ = tx.read(X)?;
                Ok(())
            });
        });
    })
    .unwrap();
    assert_eq!(b.memory().load(Y), 3);
}

/// Fig. 5 — the property behind the commit-timestamp definition: no
/// transaction ever observes a *torn* commit. A writer updates X and Y
/// together; concurrent readers must see X == Y on every (committed)
/// attempt, under heavy interleaving.
#[test]
fn fig5_commits_are_never_torn() {
    let b = SiHtm::new(
        HtmConfig { cores: 2, smt: 4, ..HtmConfig::default() },
        256,
        SiHtmConfig::default(),
    );
    let stop = AtomicBool::new(false);

    crossbeam_utils::thread::scope(|s| {
        let bw = b.clone();
        let stop_w = &stop;
        s.spawn(move |_| {
            let mut t = bw.register_thread();
            for i in 1..300u64 {
                t.exec(TxKind::Update, &mut |tx| {
                    tx.write(X, i)?;
                    tx.write(Y, i)
                });
            }
            stop_w.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            let br = b.clone();
            let stop_r = &stop;
            s.spawn(move |_| {
                let mut t = br.register_thread();
                while !stop_r.load(Ordering::Acquire) {
                    let mut pair = (0, 0);
                    t.exec(TxKind::ReadOnly, &mut |tx| {
                        pair = (tx.read(X)?, tx.read(Y)?);
                        Ok(())
                    });
                    assert_eq!(pair.0, pair.1, "torn commit observed: {pair:?}");
                }
            });
        }
    })
    .unwrap();
    assert_eq!(b.memory().load(X), 299);
    assert_eq!(b.memory().load(Y), 299);
}

/// Footnote 2's consequence, exercised directly: a non-transactional
/// (SGL-class) write kills tracked HTM readers but cannot touch untracked
/// ROT readers — which is why SI-HTM cannot use early lock subscription.
#[test]
fn sgl_subscription_only_works_for_tracked_readers() {
    let htm = Htm::new(HtmConfig::small(), 256);
    let mut htm_reader = htm.register_thread();
    let mut rot_reader = htm.register_thread();
    let mut locker = htm.register_thread();

    htm_reader.begin(TxMode::Htm);
    htm_reader.read(X).unwrap(); // subscribed
    rot_reader.begin(TxMode::Rot);
    rot_reader.read(X).unwrap(); // untracked

    locker.write_notx(X, 99, NonTxClass::Sgl);

    assert_eq!(htm_reader.commit(), Err(AbortReason::NonTx), "subscriber killed");
    rot_reader.commit().expect("ROT reader survives — subscription is impossible");
}
