//! Cross-backend resilience tests: panic safety, SGL storms, and the
//! quiescence watchdog (DESIGN.md §9).
//!
//! Panic-safety contract: a transaction body that unwinds must leave the
//! backend in a state where *other* threads keep committing — the in-flight
//! hardware transaction is aborted, the StateArray slot is cleared and the
//! SGL is released by the thread handles' `Drop` impls. The tests verify
//! this end-to-end with real OS threads and a bounded-wait monitor; the
//! SI-HTM/P8TM survivors run with the watchdog *disabled* so a leaked
//! active slot would hang (and fail the bound) instead of being silently
//! papered over by watchdog degradation.

use htm_sim::HtmConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tm_api::{increment, Outcome, RetryPolicy, ThreadStats, TmBackend, TmThread, TxKind, Watchdog};
use txmem::hooks::chaos::{self, ChaosConfig};
use txmem::WORDS_PER_LINE;

const WORDS: usize = 4096;

/// Chaos state is process-global; serialize every test in this binary so
/// injection configured by one test never bleeds into another.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Join `handle`, failing the test if it does not finish within `deadline`
/// (the liveness half of every assertion below — a leaked lock or active
/// slot shows up here as a hang, not as a wedged test run).
fn join_within<T>(
    handle: std::thread::JoinHandle<T>,
    deadline: Duration,
    what: &str,
) -> std::thread::Result<T> {
    let t0 = Instant::now();
    while !handle.is_finished() {
        assert!(t0.elapsed() < deadline, "{what} did not finish within {deadline:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.join()
}

/// One thread panics mid-body; a second thread registered afterwards must
/// still commit within a bounded wait.
fn panic_mid_body_then_survivor_commits<B: TmBackend>(backend: B) {
    let backend = Arc::new(backend);

    let b = Arc::clone(&backend);
    let victim = std::thread::spawn(move || {
        let mut t = b.register_thread();
        t.exec(TxKind::Update, &mut |tx| {
            tx.write(0, 42)?;
            panic!("injected body panic");
        });
    });
    assert!(
        join_within(victim, Duration::from_secs(10), "victim").is_err(),
        "the body panic must propagate out of exec"
    );

    let b = Arc::clone(&backend);
    let survivor = std::thread::spawn(move || {
        let mut t = b.register_thread();
        let out = increment(&mut t, WORDS_PER_LINE as u64);
        (out, t.stats().clone())
    });
    let (out, stats) =
        join_within(survivor, Duration::from_secs(10), "survivor").expect("survivor panicked");
    assert_eq!(out, Outcome::Committed, "survivor must commit after a peer's panic");
    assert_eq!(stats.commits, 1);
}

#[test]
fn panic_containment_si_htm() {
    let _s = serial();
    let cfg = si_htm::SiHtmConfig { watchdog: Watchdog::disabled(), ..Default::default() };
    panic_mid_body_then_survivor_commits(si_htm::SiHtm::new(HtmConfig::default(), WORDS, cfg));
}

#[test]
fn panic_containment_p8tm() {
    let _s = serial();
    let cfg = p8tm::P8tmConfig { watchdog: Watchdog::disabled(), ..Default::default() };
    panic_mid_body_then_survivor_commits(p8tm::P8tm::new(HtmConfig::default(), WORDS, cfg));
}

#[test]
fn panic_containment_htm_sgl() {
    let _s = serial();
    panic_mid_body_then_survivor_commits(htm_sgl::HtmSgl::new(
        HtmConfig::default(),
        WORDS,
        Default::default(),
    ));
}

#[test]
fn panic_containment_silo() {
    let _s = serial();
    panic_mid_body_then_survivor_commits(silo::Silo::new(WORDS));
}

/// Panic while *holding the SGL*: certain access-abort injection drives
/// every hardware attempt to the fall-back, so the body's panic fires on
/// the lock-holding slow path. The survivor only commits if the thread
/// handle's Drop released the lock word.
fn panic_on_sgl_path_then_survivor_commits<B: TmBackend>(backend: B) {
    let backend = Arc::new(backend);
    let guard = chaos::install(ChaosConfig {
        abort_access: 1.0,
        capacity_share: 1.0,
        ..Default::default()
    });

    let b = Arc::clone(&backend);
    let victim = std::thread::spawn(move || {
        let mut t = b.register_thread();
        t.exec(TxKind::Update, &mut |tx| {
            // Aborts with Capacity on every hardware attempt (the injector),
            // succeeds only on the non-transactional SGL path — where the
            // panic then fires while the lock is held.
            tx.write(0, 42)?;
            panic!("injected SGL-path panic");
        });
    });
    assert!(join_within(victim, Duration::from_secs(10), "SGL victim").is_err());
    drop(guard);

    let b = Arc::clone(&backend);
    let survivor = std::thread::spawn(move || {
        let mut t = b.register_thread();
        increment(&mut t, WORDS_PER_LINE as u64)
    });
    let out =
        join_within(survivor, Duration::from_secs(10), "SGL survivor").expect("survivor panicked");
    assert_eq!(out, Outcome::Committed, "SGL must have been released by the panicking thread");
}

#[test]
fn sgl_path_panic_releases_lock_htm_sgl() {
    let _s = serial();
    panic_on_sgl_path_then_survivor_commits(htm_sgl::HtmSgl::new(
        HtmConfig::default(),
        WORDS,
        Default::default(),
    ));
}

#[test]
fn sgl_path_panic_releases_lock_si_htm() {
    let _s = serial();
    panic_on_sgl_path_then_survivor_commits(si_htm::SiHtm::new(
        HtmConfig::default(),
        WORDS,
        Default::default(),
    ));
}

#[test]
fn sgl_path_panic_releases_lock_p8tm() {
    let _s = serial();
    panic_on_sgl_path_then_survivor_commits(p8tm::P8tm::new(
        HtmConfig::default(),
        WORDS,
        Default::default(),
    ));
}

/// SGL storm: a tiny retry budget plus heavy injected capacity aborts drive
/// nearly every transaction to the lock. Forward progress must hold (every
/// exec commits) and the lock accounting must balance: each acquisition
/// produces exactly one SGL commit — no lost or leaked acquisitions.
#[test]
fn sgl_storm_keeps_forward_progress() {
    let _s = serial();
    const THREADS: usize = 4;
    const OPS: u64 = 300;

    let cfg = htm_sgl::HtmSglConfig {
        retry: RetryPolicy { budget: 1, capacity_cost: 1 },
        backoff: tm_api::BackoffPolicy::exponential(),
    };
    let backend = Arc::new(htm_sgl::HtmSgl::new(HtmConfig::default(), WORDS, cfg));
    let guard = chaos::install(ChaosConfig {
        abort_access: 0.9,
        capacity_share: 1.0,
        ..Default::default()
    });

    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let b = Arc::clone(&backend);
        handles.push(std::thread::spawn(move || {
            let mut t = b.register_thread();
            for _ in 0..OPS {
                assert_eq!(increment(&mut t, 0), Outcome::Committed);
            }
            t.stats().clone()
        }));
    }
    let mut total = ThreadStats::default();
    for h in handles {
        total += &join_within(h, Duration::from_secs(60), "storm worker")
            .expect("storm worker panicked");
    }
    drop(guard);

    assert_eq!(total.commits, THREADS as u64 * OPS, "every exec must commit");
    assert!(total.sgl_commits > 0, "the storm must actually exercise the SGL");
    assert_eq!(
        total.sgl_acquisitions, total.sgl_commits,
        "each SGL acquisition must yield exactly one SGL commit"
    );
    assert_eq!(backend.memory().load(0), THREADS as u64 * OPS, "lost updates");
}

/// The acceptance scenario for the quiescence watchdog: a read-only
/// transaction stalls inside its body (running as a ROT, so it occupies a
/// StateArray slot the committer must quiesce on). With short deadlines the
/// writer must trip the watchdog, degrade to the SGL-serialized slow path,
/// and commit anyway — and the trip must be visible in its statistics.
#[test]
fn stalled_ro_trips_watchdog_and_writers_commit() {
    let _s = serial();
    let cfg = si_htm::SiHtmConfig {
        // Route read-only transactions through ROTs so the stalled reader
        // actually holds a StateArray slot.
        ro_fast_path: false,
        watchdog: Watchdog {
            quiesce: Some(Duration::from_millis(50)),
            drain: Some(Duration::from_millis(50)),
        },
        ..Default::default()
    };
    let backend = Arc::new(si_htm::SiHtm::new(HtmConfig::default(), WORDS, cfg));

    let ro_started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));

    let b = Arc::clone(&backend);
    let started = Arc::clone(&ro_started);
    let rel = Arc::clone(&release);
    let reader = std::thread::spawn(move || {
        let mut t = b.register_thread();
        let out = t.exec(TxKind::ReadOnly, &mut |tx| {
            tx.read(0)?;
            started.store(true, Ordering::Release);
            // Stall mid-transaction (e.g. a descheduled thread) until the
            // writer is done. On the retry after being killed, `release` is
            // already set and the body runs straight through.
            let t0 = Instant::now();
            while !rel.load(Ordering::Acquire) {
                assert!(t0.elapsed() < Duration::from_secs(20), "reader never released");
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(())
        });
        (out, t.stats().clone())
    });

    while !ro_started.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(1));
    }

    let b = Arc::clone(&backend);
    let writer = std::thread::spawn(move || {
        let mut t = b.register_thread();
        let t0 = Instant::now();
        let out = increment(&mut t, WORDS_PER_LINE as u64);
        (out, t0.elapsed(), t.stats().clone())
    });
    let (out, elapsed, stats) =
        join_within(writer, Duration::from_secs(10), "writer").expect("writer panicked");
    assert_eq!(out, Outcome::Committed, "the writer must commit despite the stalled reader");
    assert!(
        elapsed < Duration::from_secs(5),
        "writer took {elapsed:?}; the watchdog should have degraded it long before"
    );
    assert!(
        stats.watchdog_quiesce_trips >= 1,
        "the stalled reader must be reported as a quiescence watchdog trip"
    );
    assert_eq!(stats.sgl_commits, 1, "the degraded commit must go through the SGL slow path");
    assert!(stats.max_wait_ns > 0, "the escalated wait must be reported");

    release.store(true, Ordering::Release);
    let (out, stats) =
        join_within(reader, Duration::from_secs(10), "reader").expect("reader panicked");
    assert_eq!(out, Outcome::Committed, "the killed reader must retry and commit");
    assert!(stats.aborts() >= 1, "the reader must have recorded its kill");
}
