//! Cross-backend equivalence: the four concurrency controls must agree on
//! *what* is computed, differing only in *how fast*. Deterministic
//! workloads produce identical final states on every backend; concurrent
//! invariant workloads hold on every backend.

use htm_sim::HtmConfig;
use std::sync::Arc;
use tm_api::{TmBackend, TmThread, TxKind};
use tpcc::{TpccConfig, TpccLayout, TpccWorker, TxMix};
use workloads::bank::Bank;
use workloads::hashmap::{HashMapConfig, HashMapWorker, TxHashMap};

/// Run a deterministic serial script on a backend and return a fingerprint
/// of the touched memory.
fn run_script<B: TmBackend>(b: &B) -> Vec<u64> {
    let bank = Bank::build(b.memory(), 0, 32, 100);
    let mut t = b.register_thread();
    // A fixed little program: transfers, an audit, a rollback.
    for i in 0..64u64 {
        let from = i % 32;
        let to = (i * 7 + 3) % 32;
        if from != to {
            t.exec(TxKind::Update, &mut |tx| {
                bank.transfer(tx, from, to, 5)?;
                Ok(())
            });
        }
    }
    t.exec(TxKind::Update, &mut |tx| {
        tx.write(0, 999)?;
        Err(tm_api::Abort::User)
    });
    let mut audit = 0;
    t.exec(TxKind::ReadOnly, &mut |tx| {
        audit = bank.audit(tx)?;
        Ok(())
    });
    assert_eq!(audit, 3200, "{}: audit mismatch", b.name());
    (0..32u64).map(|a| b.memory().load(a * 16)).collect()
}

#[test]
fn serial_scripts_agree_across_backends() {
    let words = Bank::memory_words(32);
    let reference = run_script(&si_htm::SiHtm::with_defaults(words));
    assert_eq!(run_script(&htm_sgl::HtmSgl::with_defaults(words)), reference, "HTM differs");
    assert_eq!(run_script(&p8tm::P8tm::with_defaults(words)), reference, "P8TM differs");
    assert_eq!(run_script(&silo::Silo::new(words)), reference, "Silo differs");
}

fn hashmap_stress<B: TmBackend>(b: &B, name: &str) {
    let cfg = HashMapConfig { buckets: 16, chain: 8, ro_fraction: 0.5 };
    let (map, alloc) = TxHashMap::build(b.memory(), &cfg);
    let before = map.count(b.memory());
    crossbeam_utils::thread::scope(|s| {
        for i in 0..3 {
            let cfg = cfg.clone();
            let alloc = Arc::clone(&alloc);
            s.spawn(move |_| {
                let mut t = b.register_thread();
                let mut w = HashMapWorker::new(map, cfg, alloc, i, 3);
                for _ in 0..500 {
                    w.run_op(&mut t);
                }
            });
        }
    })
    .unwrap();
    let after = map.count(b.memory());
    assert!(
        after.abs_diff(before) <= 3,
        "{name}: map size drifted beyond in-flight inserts ({before} -> {after})"
    );
    // Every original key must still be present with its original value.
    let mut t = b.register_thread();
    for key in 1..=cfg.initial_keys() {
        let mut v = None;
        t.exec(TxKind::ReadOnly, &mut |tx| {
            v = map.lookup(tx, key)?;
            Ok(())
        });
        assert_eq!(v, Some(key), "{name}: original key {key} corrupted");
    }
}

#[test]
fn hashmap_invariants_hold_on_every_backend() {
    let cfg = HashMapConfig { buckets: 16, chain: 8, ro_fraction: 0.5 };
    let words = cfg.memory_words(4);
    hashmap_stress(&si_htm::SiHtm::new(HtmConfig::small(), words, Default::default()), "SI-HTM");
    hashmap_stress(&htm_sgl::HtmSgl::new(HtmConfig::small(), words, Default::default()), "HTM");
    hashmap_stress(&p8tm::P8tm::new(HtmConfig::small(), words, Default::default()), "P8TM");
    hashmap_stress(&silo::Silo::new(words), "Silo");
}

fn tpcc_stress<B: TmBackend>(b: &B, layout: &Arc<TpccLayout>, name: &str) {
    layout.populate(b.memory());
    crossbeam_utils::thread::scope(|s| {
        for i in 0..3 {
            let layout = Arc::clone(layout);
            s.spawn(move |_| {
                let mut t = b.register_thread();
                let mut w = TpccWorker::new(layout, i);
                for _ in 0..400 {
                    w.run_op(&mut t);
                }
            });
        }
    })
    .unwrap();
    layout
        .check_consistency(b.memory())
        .unwrap_or_else(|e| panic!("{name}: TPC-C consistency violated: {e}"));
}

#[test]
fn tpcc_consistency_holds_on_every_backend() {
    let layout = Arc::new(TpccLayout::new(TpccConfig::tiny(TxMix::standard())));
    let words = layout.memory_words();
    tpcc_stress(
        &si_htm::SiHtm::new(HtmConfig::small(), words, Default::default()),
        &layout,
        "SI-HTM",
    );
    tpcc_stress(
        &htm_sgl::HtmSgl::new(HtmConfig::small(), words, Default::default()),
        &layout,
        "HTM",
    );
    tpcc_stress(&p8tm::P8tm::new(HtmConfig::small(), words, Default::default()), &layout, "P8TM");
    tpcc_stress(&silo::Silo::new(words), &layout, "Silo");
}

/// The ablation configurations of SI-HTM still produce correct results
/// (except `quiescence = false`, which is deliberately unsafe and excluded).
#[test]
fn si_htm_ablation_configs_are_correct() {
    use si_htm::{SiHtm, SiHtmConfig};
    for (name, config) in [
        ("no RO fast path", SiHtmConfig { ro_fast_path: false, ..Default::default() }),
        ("killing alternative", SiHtmConfig { kill_after: Some(100), ..Default::default() }),
    ] {
        let b = SiHtm::new(HtmConfig::small(), 256, config);
        crossbeam_utils::thread::scope(|s| {
            for _ in 0..3 {
                let b = b.clone();
                s.spawn(move |_| {
                    let mut t = b.register_thread();
                    for _ in 0..300 {
                        tm_api::increment(&mut t, 0);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(b.memory().load(0), 900, "{name}: lost updates");
    }
}
