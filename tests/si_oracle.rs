//! An SI *oracle*: record complete transaction histories from concurrent
//! SI-HTM runs, then verify offline that the execution was Snapshot
//! Isolation — the observable core of the definition the paper proves
//! against (§3.4): committed-only reads (R1), own-writes visibility (R3),
//! snapshot stability (R4), and no lost updates (R5).
//!
//! ## Method
//!
//! Workers run randomized **read-modify-write** transactions through the
//! public API; each committed transaction's reads `(addr, value)` and
//! writes `(addr, value)` are recorded, with globally unique written
//! values. Because every writer first reads the address it overwrites,
//! each committed value has a *parent* (the value it replaced), and the
//! checker can reconstruct the exact per-address commit chains:
//!
//! 1. **R5 / lost updates** — two committed writers must never share a
//!    parent value (both would have overwritten the same version);
//! 2. **R1 / committed reads** — every read value appears in a chain (or
//!    is the initial 0, or the reader's own earlier write);
//! 3. **R4 / snapshot stability** — repeated reads of an address within a
//!    transaction return one version;
//! 4. **Write atomicity** — no transaction's snapshot *straddles* a
//!    multi-address writer's commit (sound because the chains are total
//!    orders).

use htm_sim::HtmConfig;
use si_htm::{SiHtm, SiHtmConfig};
use std::collections::HashMap;
use std::sync::Mutex;
use tm_api::{Outcome, TmBackend, TmThread, TxKind};

const LINES: u64 = 6;
const LINE: u64 = 16;

#[derive(Debug, Clone)]
struct Record {
    reads: Vec<(u64, u64)>,
    writes: Vec<(u64, u64)>,
}

/// Build the total commit chain of one address from parent edges
/// (`new value -> value it overwrote`). Returns `Err` on lost updates or
/// broken chains.
fn build_chain(addr: u64, records: &[Record]) -> Result<Vec<u64>, String> {
    // parent[v_new] = v_read_before_write
    let mut parent: HashMap<u64, u64> = HashMap::new();
    let mut children: HashMap<u64, u64> = HashMap::new();
    for rec in records {
        for &(a, v_new) in &rec.writes {
            if a != addr {
                continue;
            }
            let v_read =
                rec.reads.iter().find(|(ra, _)| *ra == addr).map(|&(_, v)| v).ok_or_else(|| {
                    format!("writer of {addr} did not read it first (oracle bug)")
                })?;
            parent.insert(v_new, v_read);
            if let Some(other) = children.insert(v_read, v_new) {
                return Err(format!(
                    "LOST UPDATE at {addr}: {other} and {v_new} both overwrote {v_read} (R5)"
                ));
            }
        }
    }
    // Walk the chain from the initial value 0.
    let mut chain = Vec::with_capacity(parent.len());
    let mut cur = 0u64;
    while let Some(&next) = children.get(&cur) {
        chain.push(next);
        cur = next;
    }
    if chain.len() != parent.len() {
        return Err(format!(
            "broken chain at {addr}: {} committed writes, walked {}",
            parent.len(),
            chain.len()
        ));
    }
    Ok(chain)
}

fn check_tx(rec: &Record, chains: &HashMap<u64, Vec<u64>>, all: &[Record]) -> Result<(), String> {
    let own: HashMap<u64, u64> = rec.writes.iter().copied().collect();
    // Snapshot position per address (index into the chain; 0 = initial).
    let mut positions: HashMap<u64, usize> = HashMap::new();
    for &(addr, val) in &rec.reads {
        if own.get(&addr) == Some(&val) {
            continue; // R3: own write observed
        }
        let pos = if val == 0 {
            0
        } else {
            let chain = chains
                .get(&addr)
                .ok_or_else(|| format!("read {val} from {addr}: nothing committed there"))?;
            chain
                .iter()
                .position(|v| *v == val)
                .map(|i| i + 1)
                .ok_or_else(|| format!("read {val} from {addr}: not a committed value (R1)"))?
        };
        if let Some(&prev) = positions.get(&addr) {
            if prev != pos {
                return Err(format!(
                    "snapshot instability at {addr}: versions {prev} then {pos} (R4)"
                ));
            }
        } else {
            positions.insert(addr, pos);
        }
    }
    // Write atomicity: never straddle a committed multi-address writer.
    for w in all {
        if w.writes.len() < 2 {
            continue;
        }
        let mut included: Option<bool> = None;
        for &(addr, val) in &w.writes {
            let (Some(&pos), Some(chain)) = (positions.get(&addr), chains.get(&addr)) else {
                continue;
            };
            let Some(w_pos) = chain.iter().position(|v| *v == val).map(|i| i + 1) else {
                continue;
            };
            let saw = pos >= w_pos;
            match included {
                None => included = Some(saw),
                Some(prev) if prev != saw => {
                    return Err(format!("fractured snapshot: straddled a commit at {addr}={val}"));
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[test]
fn recorded_histories_satisfy_snapshot_isolation() {
    let backend = SiHtm::new(
        HtmConfig { cores: 2, smt: 4, ..HtmConfig::default() },
        (LINES * LINE) as usize,
        SiHtmConfig::default(),
    );
    let records: Mutex<Vec<Record>> = Mutex::new(Vec::new());
    let threads = 4u64;
    let per_thread = 150u64;

    crossbeam_utils::thread::scope(|s| {
        for thread in 0..threads {
            let backend = backend.clone();
            let records = &records;
            s.spawn(move |_| {
                let mut t = backend.register_thread();
                let mut state = thread + 1;
                let mut next_rand = move || {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    state
                };
                for seq in 1..=per_thread {
                    let n_reads = next_rand() % LINES;
                    let w1 = (next_rand() % LINES) * LINE;
                    let two_writes = next_rand() % 2 == 0;
                    let w2 = ((w1 / LINE + 1) % LINES) * LINE;
                    let val = thread * 1_000_000 + seq; // globally unique
                    let mut reads = Vec::new();
                    let mut writes = Vec::new();
                    let out = t.exec(TxKind::Update, &mut |tx| {
                        reads.clear();
                        writes.clear();
                        // Random extra reads.
                        for k in 0..n_reads {
                            let addr = ((k * 3 + thread) % LINES) * LINE;
                            reads.push((addr, tx.read(addr)?));
                        }
                        // Read-modify-write each written address.
                        reads.push((w1, tx.read(w1)?));
                        tx.write(w1, val)?;
                        writes.push((w1, val));
                        if two_writes {
                            reads.push((w2, tx.read(w2)?));
                            tx.write(w2, val)?;
                            writes.push((w2, val));
                        }
                        Ok(())
                    });
                    if out == Outcome::Committed {
                        records
                            .lock()
                            .unwrap()
                            .push(Record { reads: reads.clone(), writes: writes.clone() });
                    }
                }
            });
        }
    })
    .unwrap();

    let records = records.into_inner().unwrap();
    assert!(
        records.len() as u64 >= threads * per_thread / 2,
        "too few commits recorded ({})",
        records.len()
    );

    let mut chains: HashMap<u64, Vec<u64>> = HashMap::new();
    for addr in (0..LINES).map(|l| l * LINE) {
        match build_chain(addr, &records) {
            Ok(chain) => {
                chains.insert(addr, chain);
            }
            Err(e) => panic!("chain reconstruction failed: {e}"),
        }
    }
    // Final memory must equal the chain heads.
    for (addr, chain) in &chains {
        let expect = chain.last().copied().unwrap_or(0);
        assert_eq!(
            backend.memory().load(*addr),
            expect,
            "final memory at {addr} disagrees with the committed chain"
        );
    }

    let mut violations = 0;
    for (i, rec) in records.iter().enumerate() {
        if let Err(e) = check_tx(rec, &chains, &records) {
            eprintln!("tx {i}: {e}");
            violations += 1;
        }
    }
    assert_eq!(violations, 0, "{violations} of {} transactions violated SI", records.len());
}
