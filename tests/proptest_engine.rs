//! Property-based tests of the P8-HTM simulator.
//!
//! A single OS thread owns several simulated hardware threads and
//! interleaves their operations deterministically (proptest generates the
//! schedule). A reference model tracks what each transaction wrote and in
//! which order transactions committed; afterwards the simulated memory
//! must equal the reference replay, and all engine bookkeeping (conflict
//! directory, TMCAM occupancy) must have drained to zero.

use htm_sim::{AbortReason, Htm, HtmConfig, HtmThread, NonTxClass, TxMode};
use proptest::prelude::*;
use std::collections::HashMap;

const WORDS: usize = 16 * 16; // 16 cache lines
const THREADS: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    Begin { mode_rot: bool },
    Read { addr: u64 },
    Write { addr: u64, val: u64 },
    Commit,
    Abort,
    Suspend,
    Resume,
    ReadNoTx { addr: u64 },
    WriteNoTx { addr: u64, val: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let addr = 0..WORDS as u64;
    prop_oneof![
        3 => any::<bool>().prop_map(|mode_rot| Op::Begin { mode_rot }),
        6 => addr.clone().prop_map(|addr| Op::Read { addr }),
        6 => (addr.clone(), 1..100u64).prop_map(|(addr, val)| Op::Write { addr, val }),
        3 => Just(Op::Commit),
        1 => Just(Op::Abort),
        1 => Just(Op::Suspend),
        1 => Just(Op::Resume),
        1 => addr.clone().prop_map(|addr| Op::ReadNoTx { addr }),
        1 => (addr, 100..200u64).prop_map(|(addr, val)| Op::WriteNoTx { addr, val }),
    ]
}

/// Reference model of one thread's in-flight transaction.
#[derive(Default)]
struct ModelTx {
    writes: HashMap<u64, u64>,
    suspended: bool,
}

struct Sim {
    threads: Vec<HtmThread>,
    model: Vec<Option<ModelTx>>,
    /// The linearised committed state.
    reference: HashMap<u64, u64>,
}

impl Sim {
    fn new(htm: &std::sync::Arc<Htm>) -> Sim {
        Sim {
            threads: (0..THREADS).map(|_| htm.register_thread()).collect(),
            model: (0..THREADS).map(|_| None).collect(),
            reference: HashMap::new(),
        }
    }

    fn ref_get(&self, addr: u64) -> u64 {
        self.reference.get(&addr).copied().unwrap_or(0)
    }

    fn apply(&mut self, t: usize, op: &Op) {
        let thr = &mut self.threads[t];
        match op {
            Op::Begin { mode_rot } => {
                if thr.in_tx() {
                    return; // nesting unsupported; skip
                }
                let mode = if *mode_rot { TxMode::Rot } else { TxMode::Htm };
                thr.begin(mode);
                self.model[t] = Some(ModelTx::default());
            }
            Op::Read { addr } => {
                if !thr.in_tx() {
                    return;
                }
                let model = self.model[t].as_ref().unwrap();
                match thr.read(*addr) {
                    Ok(v) => {
                        if !model.suspended {
                            // Read-your-writes; otherwise the current
                            // committed state (no other thread is mid-commit
                            // in this single-OS-thread schedule).
                            let expected = model
                                .writes
                                .get(addr)
                                .copied()
                                .unwrap_or_else(|| self.ref_get(*addr));
                            assert_eq!(v, expected, "t{t} read {addr}");
                        }
                    }
                    Err(_) => self.model[t] = None,
                }
            }
            Op::Write { addr, val } => {
                if !thr.in_tx() {
                    return;
                }
                let suspended = thr.is_suspended();
                match thr.write(*addr, *val) {
                    Ok(()) => {
                        if suspended {
                            // Non-transactional effect: immediately durable;
                            // may also have killed transactions (including
                            // our own model write sets on that line).
                            self.on_nontx_write(*addr, *val);
                        } else if let Some(m) = self.model[t].as_mut() {
                            m.writes.insert(*addr, *val);
                        }
                    }
                    Err(_) => self.model[t] = None,
                }
            }
            Op::Commit => {
                if !thr.in_tx() || thr.is_suspended() {
                    return;
                }
                match thr.commit() {
                    Ok(()) => {
                        let m = self.model[t].take().expect("model tracked the tx");
                        for (a, v) in m.writes {
                            self.reference.insert(a, v);
                        }
                    }
                    Err(_) => self.model[t] = None,
                }
            }
            Op::Abort => {
                if !thr.in_tx() {
                    return;
                }
                let r = thr.abort();
                // A self-inflicted abort on a live transaction reports
                // Explicit; if a kill landed first its reason wins.
                assert!(
                    matches!(r, AbortReason::Explicit | AbortReason::Conflict | AbortReason::NonTx),
                    "unexpected abort reason {r:?}"
                );
                self.model[t] = None;
            }
            Op::Suspend => {
                if thr.in_tx() && !thr.is_suspended() {
                    thr.suspend();
                    if let Some(m) = self.model[t].as_mut() {
                        m.suspended = true;
                    }
                }
            }
            Op::Resume => {
                if thr.in_tx() && thr.is_suspended() {
                    if let Some(m) = self.model[t].as_mut() {
                        m.suspended = false;
                    }
                    if thr.resume().is_err() {
                        self.model[t] = None;
                    }
                }
            }
            Op::ReadNoTx { addr } => {
                if thr.in_tx() {
                    return; // suspended reads covered via Op::Read
                }
                let v = thr.read_notx(*addr, NonTxClass::Data);
                // The read may have killed an active writer of the line;
                // it must return the committed value.
                self.note_kills_on_line(*addr);
                assert_eq!(v, self.ref_get(*addr), "non-tx read of {addr}");
            }
            Op::WriteNoTx { addr, val } => {
                if thr.in_tx() {
                    return;
                }
                self.threads[t].write_notx(*addr, *val, NonTxClass::Sgl);
                self.on_nontx_write(*addr, *val);
            }
        }
    }

    /// A non-transactional write landed: it is durable immediately, and any
    /// transaction whose write set covers the line has been killed.
    fn on_nontx_write(&mut self, addr: u64, val: u64) {
        self.reference.insert(addr, val);
        self.note_kills_on_line(addr);
    }

    /// Drop the model of any transaction that the engine doomed (kills are
    /// asynchronous: the victim's model stays until observed, but for
    /// reference-checking reads we must know writes were discarded).
    fn note_kills_on_line(&mut self, _addr: u64) {
        for t in 0..THREADS {
            if self.model[t].is_some() && self.threads[t].doomed().is_some() {
                // Doomed: its buffered writes will never apply. Keep the
                // engine's own cleanup lazy (that is what we are testing),
                // but stop expecting its writes.
                if let Some(m) = self.model[t].as_mut() {
                    m.writes.clear();
                }
            }
        }
    }

    fn finish(mut self, htm: &Htm) {
        // Close every open transaction.
        for t in 0..THREADS {
            if self.threads[t].in_tx() {
                if self.threads[t].is_suspended() {
                    let _ = self.threads[t].resume();
                }
                if self.threads[t].in_tx() {
                    self.threads[t].abort();
                }
                self.model[t] = None;
            }
        }
        // Memory must equal the reference replay.
        for addr in 0..WORDS as u64 {
            assert_eq!(
                htm.memory().load(addr),
                self.ref_get(addr),
                "memory diverged from reference at {addr}"
            );
        }
        // All bookkeeping drained.
        assert_eq!(htm.directory().tracked_lines(), 0, "directory leaked entries");
        for core in 0..htm.config().cores {
            assert_eq!(htm.cores().tmcam_used(core), 0, "TMCAM leaked on core {core}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Deterministic interleavings of three hardware threads: committed
    /// effects linearise, doomed transactions vanish, bookkeeping drains.
    #[test]
    fn interleaved_transactions_linearise(
        schedule in proptest::collection::vec((0..THREADS, op_strategy()), 1..200)
    ) {
        let htm = Htm::new(
            HtmConfig { cores: 2, smt: 2, tmcam_lines: 8, ..HtmConfig::default() },
            WORDS,
        );
        let mut sim = Sim::new(&htm);
        for (t, op) in &schedule {
            sim.apply(*t, op);
        }
        sim.finish(&htm);
    }

    /// Capacity accounting: a transaction touching k distinct lines in HTM
    /// mode either gets them all or takes a capacity abort — and always
    /// returns its entries.
    #[test]
    fn tmcam_accounting_is_exact(lines in 1..16u64, cap in 1..16u64) {
        let htm = Htm::new(
            HtmConfig { cores: 1, smt: 1, tmcam_lines: cap, ..HtmConfig::default() },
            WORDS,
        );
        let mut t = htm.register_thread();
        t.begin(TxMode::Htm);
        let mut ok = true;
        for i in 0..lines {
            if t.read(i * 16).is_err() {
                ok = false;
                break;
            }
        }
        if ok {
            prop_assert!(lines <= cap, "over-capacity transaction survived");
            prop_assert_eq!(t.tmcam_footprint(), lines);
            t.commit().unwrap();
        } else {
            prop_assert!(lines > cap, "in-capacity transaction aborted");
            prop_assert!(!t.in_tx(), "failed tx must be torn down");
        }
        prop_assert_eq!(htm.cores().tmcam_used(0), 0);
    }

    /// ROT write-capacity mirror of the above.
    #[test]
    fn rot_write_capacity_is_exact(lines in 1..16u64, cap in 1..16u64) {
        let htm = Htm::new(
            HtmConfig { cores: 1, smt: 1, tmcam_lines: cap, ..HtmConfig::default() },
            WORDS,
        );
        let mut t = htm.register_thread();
        t.begin(TxMode::Rot);
        let mut ok = true;
        for i in 0..lines {
            // Interleave unbounded reads to show they are free.
            let _ = t.read(((i + 7) % 16) * 16);
            if t.write(i * 16, i + 1).is_err() {
                ok = false;
                break;
            }
        }
        if ok {
            prop_assert!(lines <= cap);
            t.commit().unwrap();
            for i in 0..lines {
                prop_assert_eq!(htm.memory().load(i * 16), i + 1);
            }
        } else {
            prop_assert!(lines > cap);
            for i in 0..lines {
                prop_assert_eq!(htm.memory().load(i * 16), 0, "aborted writes leaked");
            }
        }
        prop_assert_eq!(htm.cores().tmcam_used(0), 0);
    }
}
