//! The SI restrictions R1–R5 (§3.4) as executable properties, plus the two
//! boundary cases that separate SI from serializability: the write-skew
//! anomaly SI-HTM *permits* and the read-promotion fix (§2.1) that removes
//! it.

use htm_sim::HtmConfig;
use si_htm::{SiHtm, SiHtmConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tm_api::{Outcome, TmBackend, TmThread, TxKind};
use txmem::WORDS_PER_LINE;

fn backend(cores: usize, smt: usize, words: usize) -> SiHtm {
    SiHtm::new(HtmConfig { cores, smt, ..HtmConfig::default() }, words, SiHtmConfig::default())
}

/// R1 + R4 — every transaction reads a consistent committed snapshot:
/// writers keep `x[i] == y[i]` for many pairs; readers (read-only *and*
/// update transactions) must never observe a mixed pair, under sustained
/// concurrency.
#[test]
fn r1_r4_snapshot_reads_under_stress() {
    const PAIRS: u64 = 8;
    let line = WORDS_PER_LINE as u64;
    let b = backend(2, 4, (PAIRS as usize * 2 + 2) * WORDS_PER_LINE);
    let x = |i: u64| i * 2 * line;
    let y = |i: u64| (i * 2 + 1) * line;
    let stop = AtomicBool::new(false);

    crossbeam_utils::thread::scope(|s| {
        // Two writers bump random pairs atomically.
        for w in 0..2u64 {
            let b = b.clone();
            let stop = &stop;
            s.spawn(move |_| {
                let mut t = b.register_thread();
                let mut n = w;
                for _ in 0..400 {
                    let i = n % PAIRS;
                    n = n.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    t.exec(TxKind::Update, &mut |tx| {
                        let v = tx.read(x(i))?;
                        tx.write(x(i), v + 1)?;
                        tx.write(y(i), v + 1)
                    });
                }
                stop.store(true, Ordering::Release);
            });
        }
        // Readers: one on the RO fast path, one as an update transaction
        // (reads inside ROTs must be snapshot-consistent too).
        for kind in [TxKind::ReadOnly, TxKind::Update] {
            let b = b.clone();
            let stop = &stop;
            s.spawn(move |_| {
                let mut t = b.register_thread();
                while !stop.load(Ordering::Acquire) {
                    let mut pairs = [(0u64, 0u64); PAIRS as usize];
                    let out = t.exec(kind, &mut |tx| {
                        for i in 0..PAIRS {
                            pairs[i as usize] = (tx.read(x(i))?, tx.read(y(i))?);
                        }
                        Ok(())
                    });
                    if out == Outcome::Committed {
                        for (i, (a, c)) in pairs.iter().enumerate() {
                            assert_eq!(a, c, "pair {i} observed torn ({a} vs {c})");
                        }
                    }
                }
            });
        }
    })
    .unwrap();
}

/// R2 — reads never block: a read-only transaction completes even while a
/// writer holds the same lines in its (buffered) write set.
#[test]
fn r2_reads_do_not_block() {
    let b = backend(2, 2, 256);
    let writer_in_tx = AtomicBool::new(false);
    let release_writer = AtomicBool::new(false);

    crossbeam_utils::thread::scope(|s| {
        let bw = b.clone();
        let writer_in_tx = &writer_in_tx;
        let release_writer = &release_writer;
        s.spawn(move |_| {
            let mut t = bw.register_thread();
            t.exec(TxKind::Update, &mut |tx| {
                tx.write(0, 42)?;
                writer_in_tx.store(true, Ordering::Release);
                while !release_writer.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                Ok(())
            });
        });

        let br = b.clone();
        let writer_in_tx2 = writer_in_tx;
        let release_writer2 = release_writer;
        s.spawn(move |_| {
            while !writer_in_tx2.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            let mut t = br.register_thread();
            let start = std::time::Instant::now();
            let mut v = u64::MAX;
            t.exec(TxKind::ReadOnly, &mut |tx| {
                v = tx.read(0)?;
                Ok(())
            });
            assert!(start.elapsed().as_millis() < 1000, "read blocked on a writer");
            assert_eq!(v, 0, "uncommitted write must be invisible");
            release_writer2.store(true, Ordering::Release);
        });
    })
    .unwrap();
}

/// R3 — a transaction's own writes are visible in its snapshot.
#[test]
fn r3_own_writes_visible() {
    let b = backend(1, 2, 256);
    let mut t = b.register_thread();
    t.exec(TxKind::Update, &mut |tx| {
        tx.write(0, 5)?;
        assert_eq!(tx.read(0)?, 5, "own write invisible");
        tx.write(0, 6)?;
        assert_eq!(tx.read(0)?, 6, "second own write invisible");
        // A different word of the same written line reads through.
        assert_eq!(tx.read(1)?, 0);
        Ok(())
    });
    assert_eq!(b.memory().load(0), 6);
}

/// R5 — overlapping write sets: no lost updates under maximal write-write
/// contention (every committed increment is reflected).
#[test]
fn r5_no_lost_updates() {
    let b = backend(2, 4, 256);
    let threads = 6;
    let per = 300u64;
    crossbeam_utils::thread::scope(|s| {
        for _ in 0..threads {
            let b = b.clone();
            s.spawn(move |_| {
                let mut t = b.register_thread();
                for _ in 0..per {
                    assert_eq!(tm_api::increment(&mut t, 0), Outcome::Committed);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(b.memory().load(0), threads as u64 * per);
}

/// SI (not serializability): SI-HTM *admits* the write-skew anomaly. Two
/// transactions read each other's variable and then write their own; under
/// ROTs the crossing reads are untracked, so — when the writes land after
/// both reads — both commit and the invariant `A + B >= 1` breaks. The
/// schedule is forced with an in-transaction rendezvous.
#[test]
fn write_skew_is_admitted() {
    const A: u64 = 0;
    const B: u64 = 16;
    let b = backend(2, 2, 256);
    b.memory().store(A, 1);
    b.memory().store(B, 1);
    let rendezvous = AtomicU64::new(0);

    crossbeam_utils::thread::scope(|s| {
        for (read_from, write_to) in [(A, B), (B, A)] {
            let b = b.clone();
            let rendezvous = &rendezvous;
            s.spawn(move |_| {
                let mut t = b.register_thread();
                let mut synced = false;
                let out = t.exec(TxKind::Update, &mut |tx| {
                    let other = tx.read(read_from)?;
                    if !synced {
                        // Wait (inside the transaction) until both have read.
                        rendezvous.fetch_add(1, Ordering::AcqRel);
                        while rendezvous.load(Ordering::Acquire) < 2 {
                            std::thread::yield_now();
                        }
                        synced = true;
                    }
                    if other == 1 {
                        tx.write(write_to, 0)?;
                    }
                    Ok(())
                });
                assert_eq!(out, Outcome::Committed);
            });
        }
    })
    .unwrap();

    assert_eq!(
        (b.memory().load(A), b.memory().load(B)),
        (0, 0),
        "both skewed writers must commit under SI"
    );
}

/// §2.1's fix: promoting the problematic reads into the write set turns
/// the skew into a write-write conflict, which the hardware resolves — the
/// invariant holds on every run.
#[test]
fn read_promotion_removes_write_skew() {
    const A: u64 = 0;
    const B: u64 = 16;
    for round in 0..30 {
        let b = backend(2, 2, 256);
        b.memory().store(A, 1);
        b.memory().store(B, 1);
        crossbeam_utils::thread::scope(|s| {
            for (read_from, write_to) in [(A, B), (B, A)] {
                let b = b.clone();
                s.spawn(move |_| {
                    let mut t = b.register_thread();
                    t.exec(TxKind::Update, &mut |tx| {
                        let other = tx.promote_read(read_from)?;
                        if other == 1 {
                            tx.write(write_to, 0)?;
                        }
                        Ok(())
                    });
                });
            }
        })
        .unwrap();
        let (a, bb) = (b.memory().load(A), b.memory().load(B));
        assert!(a + bb >= 1, "round {round}: promotion failed to prevent skew (A={a} B={bb})");
    }
}

/// Inconsistent reads are prevented even for transactions that later abort
/// (§3.4's "stronger guarantee"): an aborted transaction still only ever
/// saw committed data. We assert it observationally: values read inside
/// bodies that later abort always equal some committed pair state.
#[test]
fn aborted_transactions_see_only_committed_data() {
    let b = backend(2, 4, 256);
    let stop = AtomicBool::new(false);
    crossbeam_utils::thread::scope(|s| {
        let bw = b.clone();
        let stop_w = &stop;
        s.spawn(move |_| {
            let mut t = bw.register_thread();
            for i in 1..200u64 {
                t.exec(TxKind::Update, &mut |tx| {
                    tx.write(0, i)?;
                    tx.write(16, i)
                });
            }
            stop_w.store(true, Ordering::Release);
        });
        for _ in 0..2 {
            let br = b.clone();
            let stop_r = &stop;
            s.spawn(move |_| {
                let mut t = br.register_thread();
                while !stop_r.load(Ordering::Acquire) {
                    // Update transactions that write to the contended lines
                    // frequently abort; each attempt's reads must still be
                    // pairwise consistent.
                    t.exec(TxKind::Update, &mut |tx| {
                        let a = tx.read(0)?;
                        let c = tx.read(16)?;
                        assert!(
                            a == c || a == c + 1 || c == a + 1,
                            "attempt read a state no commit ever produced: ({a}, {c})"
                        );
                        tx.write(32, a)?;
                        Ok(())
                    });
                }
            });
        }
    })
    .unwrap();
}
