//! Database-style index scans on the transactional B+-tree: point queries
//! vs leaf-chain range scans under concurrent updates, across backends.
//!
//! Range scans are the IMDB pattern the paper's capacity argument is
//! about: a 500-entry scan walks ~70 leaves (~140 cache lines), far past
//! the 64-line TMCAM — plain HTM must serialise on its fall-back lock,
//! SI-HTM reads it for free on the read-only fast path.
//!
//! Run with: `cargo run --release --example index_scan`

use std::sync::Arc;
use std::time::Duration;
use tm_api::TmBackend;
use txmem::LineAlloc;
use workloads::btree::{memory_words, BTreeWorker, TxBTree};
use workloads::driver::{run, RunConfig};

const KEYS: u64 = 50_000;

fn demo<B: TmBackend>(backend: &B) {
    let alloc = Arc::new(LineAlloc::new(0, backend.memory().len() as u64));
    let tree = TxBTree::build(backend.memory(), &alloc, 1..=KEYS);
    let threads = 4;
    let report = run(
        backend,
        &RunConfig::new(threads, Duration::from_millis(100), Duration::from_millis(500)),
        |i| {
            // 60% lookups, 20% range scans, 20% insert/remove.
            let mut w = BTreeWorker::new(tree, Arc::clone(&alloc), KEYS, 0.6, 0.2, i, threads);
            move |t: &mut B::Thread| w.run_op(t)
        },
    );
    println!(
        "{:8} {:>9.0} ops/s | aborts {:>5.1}% (capacity {:>4.1}%) | SGL {:>6} | quiesce {:>7}",
        backend.name(),
        report.throughput(),
        report.total.abort_rate(),
        report.total.abort_share(tm_api::AbortReason::Capacity),
        report.total.sgl_commits,
        report.total.quiesce_waits,
    );
    // Structural invariants must have survived the concurrent traffic.
    let keys = tree.audit(backend.memory());
    assert!(keys.len() as u64 >= KEYS - threads as u64);
}

fn main() {
    let words = memory_words(KEYS * 2) + 16 * 200_000;
    println!(
        "B+-tree index: {KEYS} keys, 4 threads, 60% point lookups / 20% \
         500-entry range scans / 20% insert-remove\n"
    );
    demo(&si_htm::SiHtm::with_defaults(words));
    demo(&htm_sgl::HtmSgl::with_defaults(words));
    demo(&p8tm::P8tm::with_defaults(words));
    demo(&silo::Silo::new(words));
    println!("\nEvery backend finished with an intact tree (audited).");
}
