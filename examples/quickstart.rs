//! Quickstart: SI-HTM in five minutes.
//!
//! Builds a simulated POWER8 machine, runs a few transactions through the
//! SI-HTM layer, and shows the three execution paths (ROT, read-only fast
//! path, SGL fall-back) along with the statistics the backend keeps.
//!
//! Run with: `cargo run --release --example quickstart`

use si_htm::SiHtm;
use tm_api::{Abort, TmBackend, TmThread, TxKind};

fn main() {
    // A machine with the paper's topology (10 cores, SMT-8, 64-line TMCAM)
    // and 4096 words of transactional memory.
    let backend = SiHtm::with_defaults(4096);
    let mut thread = backend.register_thread();

    // 1. An update transaction: runs as a rollback-only transaction (ROT).
    //    Reads are untracked — only the write set counts against capacity.
    thread.exec(TxKind::Update, &mut |tx| {
        let balance = tx.read(0)?;
        tx.write(0, balance + 100)
    });
    println!("balance after deposit: {}", backend.memory().load(0));

    // 2. A read-only transaction: runs entirely non-transactionally on the
    //    fast path — unbounded footprint, never aborts.
    let mut sum = 0;
    thread.exec(TxKind::ReadOnly, &mut |tx| {
        sum = 0;
        for addr in (0..4096).step_by(16) {
            sum += tx.read(addr)?;
        }
        Ok(())
    });
    println!("full-memory sweep inside one read-only tx: sum = {sum}");

    // 3. A transaction that outgrows the TMCAM write capacity falls back
    //    to the single global lock — transparently.
    thread.exec(TxKind::Update, &mut |tx| {
        for line in 0..100u64 {
            tx.write(line * 16 + 1, line)?;
        }
        Ok(())
    });

    // 4. Semantic rollbacks: return Abort::User and nothing is written.
    thread.exec(TxKind::Update, &mut |tx| {
        tx.write(0, 0)?; // would wipe the balance...
        Err(Abort::User) // ...but we change our mind.
    });
    println!("balance survived the rollback: {}", backend.memory().load(0));

    let s = thread.stats();
    println!(
        "\nstats: {} commits ({} read-only, {} on the SGL), {} aborts \
         ({} capacity), {} user rollbacks",
        s.commits,
        s.ro_commits,
        s.sgl_commits,
        s.aborts(),
        s.aborts_capacity,
        s.user_aborts,
    );
    assert_eq!(backend.memory().load(0), 100);
}
