//! A night of TPC-C: run the full benchmark on SI-HTM and audit the books.
//!
//! Populates a 2-warehouse TPC-C database, runs the standard mix on four
//! terminals for a second, then switches to the read-dominated mix —
//! finally re-checking the TPC-C consistency conditions (W_YTD = Σ D_YTD,
//! order-ring sanity, delivery invariants) over the whole database.
//!
//! Run with: `cargo run --release --example tpcc_night`

use std::sync::Arc;
use std::time::Duration;
use tm_api::TmBackend;
use tpcc::{TpccConfig, TpccLayout, TpccWorker, TxMix};
use workloads::driver::{run, RunConfig};

fn shift(layout: &Arc<TpccLayout>, backend: &si_htm::SiHtm, label: &str) {
    let threads = 4;
    let report = run(
        backend,
        &RunConfig::new(threads, Duration::from_millis(100), Duration::from_millis(800)),
        |i| {
            let mut w = TpccWorker::new(Arc::clone(layout), i);
            move |t: &mut si_htm::SiHtmThread| w.run_op(t)
        },
    );
    println!(
        "{label:<16} {:>9.0} tx/s | {:>5.1}% aborts | {:>4} SGL | {:>6} quiesce waits",
        report.throughput(),
        report.total.abort_rate(),
        report.total.sgl_commits,
        report.total.quiesce_waits,
    );
    layout
        .check_consistency(backend.memory())
        .expect("TPC-C consistency conditions must hold after the shift");
}

fn main() {
    let mut cfg = TpccConfig::paper(2, TxMix::standard());
    // A small store for a quick demo: fewer items/customers, same shape.
    cfg.items = 10_000;
    cfg.customers_per_d = 300;
    cfg.initial_orders = 300;
    cfg.delivered_prefix = 210;
    cfg.order_ring = 512;

    let layout = Arc::new(TpccLayout::new(cfg));
    let backend = si_htm::SiHtm::with_defaults(layout.memory_words());
    println!(
        "TPC-C on SI-HTM: {} warehouses, {} items, DB = {} MB\n",
        layout.cfg.warehouses,
        layout.cfg.items,
        layout.memory_words() * 8 / (1 << 20),
    );
    layout.populate(backend.memory());
    layout.check_consistency(backend.memory()).expect("fresh database consistent");

    shift(&layout, &backend, "standard mix");

    let mut cfg2 = layout.cfg.clone();
    cfg2.mix = TxMix::read_dominated();
    let layout2 = Arc::new(TpccLayout::new(cfg2));
    // Same database, new mix (layouts are identical apart from the mix).
    shift(&layout2, &backend, "read-dominated");

    println!("\nBooks audited: every consistency condition held. Good night.");
}
