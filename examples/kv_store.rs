//! A concurrent key-value store on the transactional hash map — the §4.1
//! micro-benchmark as an application.
//!
//! Spawns a mixed workload (lookups, inserts, removes) over a hash map
//! whose bucket chains are long enough that a single lookup overflows the
//! TMCAM of plain HTM, and prints how each backend copes. This is the
//! "large footprint, read-dominated" regime where the paper reports
//! SI-HTM's biggest wins (Fig. 6).
//!
//! Run with: `cargo run --release --example kv_store`

use std::sync::Arc;
use std::time::Duration;
use tm_api::{TmBackend, TmThread, TxKind};
use workloads::hashmap::{HashMapConfig, HashMapWorker, TxHashMap};

fn demo<B: TmBackend>(backend: &B, cfg: &HashMapConfig, threads: usize) {
    let (map, alloc) = TxHashMap::build(backend.memory(), cfg);
    let before = map.count(backend.memory());
    let report = workloads::driver::run(
        backend,
        &workloads::driver::RunConfig::new(
            threads,
            Duration::from_millis(100),
            Duration::from_millis(400),
        ),
        |i| {
            let mut w = HashMapWorker::new(map, cfg.clone(), Arc::clone(&alloc), i, threads);
            move |t: &mut B::Thread| w.run_op(t)
        },
    );
    println!(
        "{:8} {:>10.0} ops/s | aborts {:>5.1}% (capacity {:>4.1}%, non-tx {:>4.1}%) | SGL {:>5}",
        backend.name(),
        report.throughput(),
        report.total.abort_rate(),
        report.total.abort_share(tm_api::AbortReason::Capacity),
        report.total.abort_share(tm_api::AbortReason::NonTx),
        report.total.sgl_commits,
    );
    // The mixed insert/remove traffic keeps the population stationary.
    let after = map.count(backend.memory());
    assert!(after.abs_diff(before) <= threads as u64, "map size drifted: {before} -> {after}");
}

fn main() {
    // 100 buckets × ~100-element chains: a lookup reads ~50-200 cache
    // lines — hopeless for tracked-read HTM, free for SI-HTM.
    let cfg = HashMapConfig { buckets: 100, chain: 100, ro_fraction: 0.9 };
    let words = cfg.memory_words(4);
    println!(
        "kv-store: {} keys in {} buckets, 90% lookups, 4 threads\n",
        cfg.initial_keys(),
        cfg.buckets
    );
    demo(&si_htm::SiHtm::with_defaults(words), &cfg, 4);
    demo(&htm_sgl::HtmSgl::with_defaults(words), &cfg, 4);
    demo(&p8tm::P8tm::with_defaults(words), &cfg, 4);
    demo(&silo::Silo::new(words), &cfg, 4);

    // Bonus: point operations through the public API.
    let backend = si_htm::SiHtm::with_defaults(words);
    let (map, alloc) = TxHashMap::build(backend.memory(), &cfg);
    let mut t = backend.register_thread();
    let node = alloc.alloc_lines(1);
    let key = cfg.initial_keys() + 1;
    t.exec(TxKind::Update, &mut |tx| {
        map.insert(tx, key, 4242, node)?;
        Ok(())
    });
    let mut v = None;
    t.exec(TxKind::ReadOnly, &mut |tx| {
        v = map.lookup(tx, key)?;
        Ok(())
    });
    println!("\npoint get after put: key {key} -> {v:?}");
    assert_eq!(v, Some(4242));
}
