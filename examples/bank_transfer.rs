//! Bank accounts under concurrency: transfers racing full-table audits.
//!
//! The audit reads every account in one read-only transaction — a
//! footprint far beyond the TMCAM — while transfer transactions keep
//! mutating pairs of accounts. Under SI-HTM the audits run on the
//! non-transactional fast path and still always observe a conserved total
//! (Snapshot Isolation at work); the same workload on plain HTM is shown
//! for contrast, paying capacity aborts and SGL serialisation.
//!
//! Run with: `cargo run --release --example bank_transfer`

use std::time::Duration;
use tm_api::TmBackend;
use workloads::bank::{Bank, BankWorker};
use workloads::driver::{run, RunConfig};

const ACCOUNTS: u64 = 256;
const INITIAL: u64 = 1_000;

fn demo<B: TmBackend>(backend: &B, label: &str) {
    let bank = Bank::build(backend.memory(), 0, ACCOUNTS, INITIAL);
    let expected = bank.total(backend.memory());
    let broken = std::sync::atomic::AtomicU64::new(0);

    let report = run(
        backend,
        &RunConfig::new(4, Duration::from_millis(100), Duration::from_millis(500)),
        |i| {
            let mut w = BankWorker::new(bank, 0.2, expected, i as u64 + 1);
            let broken = &broken;
            move |t: &mut B::Thread| {
                w.run_op(t);
                if w.broken_audits > 0 {
                    broken.fetch_add(w.broken_audits, std::sync::atomic::Ordering::Relaxed);
                    w.broken_audits = 0;
                }
            }
        },
    );

    let torn = broken.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "{label:8} {:>10.0} tx/s | abort rate {:>5.1}% (capacity {:>4.1}%) | \
         SGL commits {:>6} | torn audits: {torn}",
        report.throughput(),
        report.total.abort_rate(),
        report.total.abort_share(tm_api::AbortReason::Capacity),
        report.total.sgl_commits,
    );
    assert_eq!(torn, 0, "an audit observed a non-conserved total!");
    assert_eq!(bank.total(backend.memory()), expected, "money was created or destroyed");
}

fn main() {
    let words = Bank::memory_words(ACCOUNTS);
    println!("{ACCOUNTS} accounts, 4 threads, 20% full-sweep audits / 80% transfers\n");
    demo(&si_htm::SiHtm::with_defaults(words), "SI-HTM");
    demo(&htm_sgl::HtmSgl::with_defaults(words), "HTM");
    demo(&silo::Silo::new(words), "Silo");
    println!("\nEvery audit on every backend saw the conserved total. On SI-HTM the");
    println!("audits ran on the read-only fast path: zero capacity aborts despite");
    println!("sweeping the whole table, while plain HTM burned capacity aborts and");
    println!("serialised on its fall-back lock.");
}
